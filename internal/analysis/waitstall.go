package analysis

import (
	"go/ast"
	"go/types"
)

// waitStallRule reports fire-and-forget goroutines: a go statement in
// the enforced tree must be visibly tied to a shutdown seam, or the
// goroutine it launches can outlive the pipeline, collector, or daemon
// it serves — leaking rings, sockets, and whole poll cycles on every
// restart, and turning clean test exits into hangs.
//
// A launch is accepted when either
//
//   - the launching function calls sync.WaitGroup.Add before the go
//     statement (the worker-pool idiom: Add, launch, Wait elsewhere), or
//   - the goroutine's body — a func literal, or the module function the
//     go statement calls — signals completion itself: it defers
//     sync.WaitGroup.Done, closes a channel, or sends on one (the
//     done-channel idiom).
//
// Anything else is a leak seed and is reported at the go statement.
type waitStallRule struct {
	modulePath string
}

func (r *waitStallRule) Name() string { return "waitstall" }
func (r *waitStallRule) Doc() string {
	return "goroutines must be tied to a shutdown seam: WaitGroup.Add before launch, or a body that defers Done, closes a channel, or sends on one; fire-and-forget goroutines leak"
}

// Check inspects every go statement in pkg.
func (r *waitStallRule) Check(pass *Pass) {
	pkg := pass.Pkg
	if !inEnforcedTree(r.modulePath, pkg.Path) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.checkBody(pass, fd.Body)
		}
	}
}

// checkBody walks one function body, nested func literals included; an
// Add anywhere lexically before the go statement in the same
// declaration satisfies the Add-before-launch form.
func (r *waitStallRule) checkBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var addPositions []ast.Node // WaitGroup.Add call sites in this body
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSyncCall(info, call, "WaitGroup", "Add") {
			addPositions = append(addPositions, call)
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		for _, add := range addPositions {
			if add.Pos() < g.Pos() {
				return true // Add-before-launch: the pool owns the lifetime
			}
		}
		if b := goroutineBody(pass, g.Call); b != nil && signalsCompletion(info, b) {
			return true
		}
		pass.Reportf(g.Pos(), "goroutine is not tied to a shutdown seam: no WaitGroup.Add before launch, and its body neither defers Done, closes a channel, nor sends on one")
		return true
	})
}

// goroutineBody resolves the body the go statement will run: a func
// literal's own body, or the declaration of a module function.
func goroutineBody(pass *Pass, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn, ok := calleeObject(pass.Pkg.Info, call).(*types.Func)
	if !ok {
		return nil
	}
	if info, ok := pass.Module.Graph.Funcs[origin(fn)]; ok && info.Decl.Body != nil {
		return info.Decl.Body
	}
	return nil
}

// signalsCompletion reports whether a goroutine body visibly signals its
// own termination: defer WaitGroup.Done, close(ch) (plain or deferred),
// or a channel send.
func signalsCompletion(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.DeferStmt:
			if isSyncCall(info, v.Call, "WaitGroup", "Done") || isCloseCall(info, v.Call) {
				found = true
			}
		case *ast.CallExpr:
			if isSyncCall(info, v, "WaitGroup", "Done") || isCloseCall(info, v) {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.FuncLit:
			return false // a nested goroutine's signals are its own
		}
		return !found
	})
	return found
}

// isSyncCall reports whether call invokes method name on sync.<recv>.
func isSyncCall(info *types.Info, call *ast.CallExpr, recv, name string) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// isCloseCall reports whether call is the close builtin.
func isCloseCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}
