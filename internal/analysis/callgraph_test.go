package analysis

import (
	"strings"
	"testing"
)

// graphSrc exercises static edges, interface dispatch, and the
// hotpath/coldpath directives in one small package.
const graphSrc = `package tmpcorpus

type visitor interface {
	visit(int)
}

type adder struct{ sum int }

func (a *adder) visit(v int) { a.sum += v }

type timer struct{ last int }

func (t *timer) visit(v int) { t.last = v }

//nslint:hotpath
func root(xs []int, vs visitor) {
	for _, x := range xs {
		step(x, vs)
	}
}

func step(x int, vs visitor) {
	vs.visit(x)
	cold()
}

//nslint:coldpath test: boundary below the hot loop
func cold() {
	leaf()
}

func leaf() {}
`

// closureNames returns the bare function names of a module's hot
// closure.
func closureNames(m *Module) []string {
	var out []string
	for _, e := range m.HotClosure() {
		out = append(out, e.Func.Obj.Name())
	}
	return out
}

func TestHotClosure(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := writeTempPkg(t, loader, graphSrc)
	m := NewModule([]*Package{pkg})
	names := closureNames(m)

	want := map[string]bool{"root": true, "step": true, "visit": true}
	got := make(map[string]bool)
	for _, n := range names {
		got[n] = true
	}
	for n := range want {
		if !got[n] {
			t.Errorf("closure is missing %s (got %v)", n, names)
		}
	}
	// The closure must stop at the coldpath boundary: neither cold nor
	// anything below it is in scope.
	for _, n := range []string{"cold", "leaf"} {
		if got[n] {
			t.Errorf("closure crossed the coldpath boundary into %s (got %v)", n, names)
		}
	}
	// Interface dispatch must have pulled in both implementations.
	visits := 0
	for _, n := range names {
		if n == "visit" {
			visits++
		}
	}
	if visits != 2 {
		t.Errorf("interface dispatch resolved %d visit implementations, want 2 (got %v)", visits, names)
	}
	// Root/Via bookkeeping: every non-root entry names its discovery
	// path.
	for _, e := range m.HotClosure() {
		if e.Func.Obj.Name() == "root" {
			if e.Via != nil {
				t.Errorf("root has Via %v, want nil", e.Via.Obj.Name())
			}
			continue
		}
		if e.Root == nil || e.Root.Obj.Name() != "root" {
			t.Errorf("%s: Root = %v, want root", e.Func.Obj.Name(), e.Root)
		}
		if e.Via == nil {
			t.Errorf("%s: Via is nil for a non-root entry", e.Func.Obj.Name())
		}
	}
}

func TestColdpathNeedsReason(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := writeTempPkg(t, loader, `package tmpcorpus

//nslint:coldpath
func bare() {}
`)
	diags := Run([]*Package{pkg}, DefaultRules(loader.ModulePath))
	found := false
	for _, d := range diags {
		if d.Rule == "nslint" && strings.Contains(d.Message, "coldpath directive needs a reason") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasonless coldpath directive was not reported; got %v", diags)
	}
}

func TestMisplacedDirectiveIsReported(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := writeTempPkg(t, loader, `package tmpcorpus

func host() {
	//nslint:hotpath
	_ = 1
}
`)
	diags := Run([]*Package{pkg}, DefaultRules(loader.ModulePath))
	found := false
	for _, d := range diags {
		if d.Rule == "nslint" && strings.Contains(d.Message, "misplaced") {
			found = true
		}
	}
	if !found {
		t.Errorf("misplaced hotpath directive was not reported; got %v", diags)
	}
}

// TestReaches pins the may-block fact propagation the mutexhold rule
// rides on: the fact flows bottom-up through static calls only.
func TestReaches(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := writeTempPkg(t, loader, `package tmpcorpus

func blocker(ch chan int) { ch <- 1 }

func mid(ch chan int) { blocker(ch) }

func top(ch chan int) { mid(ch) }

func clean() {}
`)
	m := NewModule([]*Package{pkg})
	reaches := m.Graph.Reaches(func(fi *FuncInfo) bool {
		return fi.Decl.Body != nil && hasDirectBlockingOp(fi.Pkg.Info, fi.Decl.Body)
	})
	byName := make(map[string]string)
	for fn, via := range reaches {
		if via == nil {
			byName[fn.Name()] = "<self>"
		} else {
			byName[fn.Name()] = via.Name()
		}
	}
	if byName["blocker"] != "<self>" {
		t.Errorf("blocker: via = %q, want <self>", byName["blocker"])
	}
	if byName["mid"] != "blocker" {
		t.Errorf("mid: via = %q, want blocker", byName["mid"])
	}
	if byName["top"] != "mid" {
		t.Errorf("top: via = %q, want mid", byName["top"])
	}
	if _, ok := byName["clean"]; ok {
		t.Errorf("clean unexpectedly reaches a blocking op")
	}
}
