package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicAlignRule reports struct fields that are targets of 64-bit
// sync/atomic operations but sit at an offset that is not 8-byte aligned
// under 32-bit struct layout. On 386 and 32-bit arm the compiler only
// guarantees 4-byte alignment for int64/uint64 struct fields, and a
// misaligned 64-bit atomic panics at runtime — so code that is correct
// on amd64 can crash the moment it runs on a smaller target. The typed
// wrappers (atomic.Int64, atomic.Uint64) carry an align64 marker and are
// immune; this rule covers the function form on plain fields.
//
// The rule is a Collector: phase one records every struct field whose
// address is passed to a 64-bit sync/atomic function anywhere in the
// module; phase two lays out each package's struct types with 32-bit
// sizes and reports the recorded fields at misaligned offsets. A struct
// type that contains such a field is itself alignment-sensitive, so the
// rule also reports fields of that struct type (or arrays of it)
// embedded at misaligned offsets in other module structs.
type atomicAlignRule struct {
	modulePath string

	atomic64 map[*types.Var][]token.Pos // field -> 64-bit atomic access sites
}

// sizes32 is the strictest production layout the module targets: 32-bit
// word size, maximum alignment 4 (gc on 386/arm).
var sizes32 = types.SizesFor("gc", "386")

func (r *atomicAlignRule) Name() string { return "atomicalign" }
func (r *atomicAlignRule) Doc() string {
	return "64-bit sync/atomic targets must sit at 8-byte-aligned struct offsets under 32-bit layout; misaligned 64-bit atomics panic on 386/arm (prefer atomic.Int64/Uint64, which self-align)"
}

// atomic64Funcs is the set of sync/atomic functions that require
// 8-byte-aligned operands.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// Collect records the struct fields passed by address to 64-bit
// sync/atomic functions in pkg.
func (r *atomicAlignRule) Collect(pass *Pass) {
	if r.atomic64 == nil {
		r.atomic64 = make(map[*types.Var][]token.Pos)
	}
	pkg := pass.Pkg
	if !inEnforcedTree(r.modulePath, pkg.Path) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(pkg.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomic64Funcs[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				arg = ast.Unparen(arg)
				ue, ok := arg.(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
					if field := selectedField(pkg.Info, sel); field != nil {
						r.atomic64[field] = append(r.atomic64[field], sel.Sel.Pos())
					}
				}
			}
			return true
		})
	}
}

// Check lays out pkg's struct types with 32-bit sizes and reports
// atomic64 fields (and alignment-sensitive embedded structs) at offsets
// that are not multiples of 8.
func (r *atomicAlignRule) Check(pass *Pass) {
	pkg := pass.Pkg
	if !inEnforcedTree(r.modulePath, pkg.Path) {
		return
	}
	// Structs that transitively contain a 64-bit atomic field need
	// 8-alignment wherever they are placed.
	sensitive := r.sensitiveStructs(pass.Module)

	type finding struct {
		pos token.Pos
		msg string
	}
	var finds []finding
	for _, st := range moduleStructs(pkg) {
		fields := structFields(st)
		offsets := sizes32.Offsetsof(fields)
		for i, f := range fields {
			off := offsets[i]
			if len(r.atomic64[f]) > 0 && off%8 != 0 {
				finds = append(finds, finding{f.Pos(), fmt.Sprintf(
					"64-bit atomic field %s is at 32-bit offset %d, not 8-byte aligned; move it to the front, pad, or use atomic.%s",
					f.Name(), off, suggestTypedAtomic(f))})
				continue
			}
			if inner := structOf(f.Type()); inner != nil && sensitive[inner] && off%8 != 0 {
				finds = append(finds, finding{f.Pos(), fmt.Sprintf(
					"field %s embeds a struct with 64-bit atomic fields at 32-bit offset %d, breaking their 8-byte alignment; move it to the front or pad",
					f.Name(), off)})
			}
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// sensitiveStructs returns the struct types that contain a 64-bit
// atomic field, computed over the whole module so embedded placements in
// other packages are caught.
func (r *atomicAlignRule) sensitiveStructs(m *Module) map[*types.Struct]bool {
	out := make(map[*types.Struct]bool)
	for _, pkg := range m.Pkgs {
		for _, st := range moduleStructs(pkg) {
			for _, f := range structFields(st) {
				if len(r.atomic64[f]) > 0 {
					out[st] = true
					break
				}
			}
		}
	}
	return out
}

// moduleStructs lists the struct types declared in pkg, in declaration
// order.
func moduleStructs(pkg *Package) []*types.Struct {
	var out []*types.Struct
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			out = append(out, st)
		}
	}
	return out
}

// structFields returns st's fields as a slice for Offsetsof.
func structFields(st *types.Struct) []*types.Var {
	out := make([]*types.Var, st.NumFields())
	for i := range out {
		out[i] = st.Field(i)
	}
	return out
}

// structOf unwraps a field type to the struct it places inline, looking
// through named types and arrays (a misaligned [N]S misaligns every
// element past the first even if the first lands well).
func structOf(t types.Type) *types.Struct {
	for {
		switch u := t.(type) {
		case *types.Named:
			t = u.Underlying()
		case *types.Array:
			t = u.Elem()
		case *types.Struct:
			return u
		default:
			return nil
		}
	}
}
