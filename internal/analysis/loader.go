package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package.
type Package struct {
	Path  string // import path, e.g. netsample/internal/dist
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses and type-checks packages of one Go module
// using only the standard library: module-internal imports are resolved
// by the loader itself from source, and everything else (the standard
// library) is delegated to go/importer's source importer. The module
// must be dependency-free beyond the standard library, which this one is.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at dir or any of its parents that
// contains go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModuleRoot walks upward from dir until it sees go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				return strings.Trim(name, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves each pattern to module packages and returns them parsed
// and type-checked, deduplicated and sorted by import path. Supported
// patterns: "./..." for the whole module, "./dir/..." for a subtree,
// "./dir" (or a bare or module-qualified path) for one package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	all, err := l.modulePackageDirs()
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool)
	for _, pat := range patterns {
		ip, subtree := l.normalizePattern(pat)
		matched := false
		for path := range all {
			if path == ip || (subtree && (ip == l.ModulePath || strings.HasPrefix(path, ip+"/"))) {
				want[path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("analysis: pattern %q matched no packages", pat)
		}
	}
	paths := make([]string, 0, len(want))
	for p := range want {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadPackage(p, all[p])
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads the single package in dir under the given import path.
// It exists for test corpora living in testdata directories, which the
// module walk deliberately skips.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPackage(importPath, abs)
}

// normalizePattern converts a CLI pattern into an import path plus a
// subtree flag.
func (l *Loader) normalizePattern(pat string) (string, bool) {
	subtree := false
	if pat == "all" {
		return l.ModulePath, true
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		subtree = true
		pat = rest
	}
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	switch {
	case pat == "" || pat == ".":
		return l.ModulePath, subtree
	case pat == l.ModulePath || strings.HasPrefix(pat, l.ModulePath+"/"):
		return pat, subtree
	default:
		return l.ModulePath + "/" + pat, subtree
	}
}

// modulePackageDirs walks the module and maps each package import path
// to its directory. Hidden directories, testdata and underscore-prefixed
// directories are skipped, mirroring the go tool's convention.
func (l *Loader) modulePackageDirs() (map[string]string, error) {
	out := make(map[string]string)
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(path)
		if err != nil {
			return err
		}
		if len(srcs) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		out[ip] = path
		return nil
	})
	return out, err
}

// goSources lists the non-test .go files of dir that build on the
// current platform: build-constrained files (//go:build lines and
// filename-implied GOOS/GOARCH suffixes like _linux.go) are filtered
// through go/build's default context, exactly as the go tool selects
// them — otherwise a platform pair such as mmap_linux.go and
// mmap_fallback.go would type-check as a redeclaration.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: match %s: %w", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// loadPackage parses and type-checks one package, memoized by import
// path. Module-internal imports recurse through the loader itself.
func (l *Loader) loadPackage(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	srcs, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(srcs))
	for _, src := range srcs {
		f, err := parser.ParseFile(l.fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", src, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-check %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts Loader to types.Importer: module-internal paths
// are loaded from source by the loader, everything else falls through to
// the standard library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.loadPackage(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
