package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floatEqRule flags == and != between floating-point operands. Exact
// float equality is almost never what a statistics codebase means: two
// mathematically equal quantities computed along different paths differ
// in their last ulps, so such comparisons introduce silent
// platform-dependent behavior. Two idioms are exempt: comparison against
// an exact constant zero (a float is exactly 0.0 iff it was assigned
// 0.0, the sentinel idiom used throughout internal/stats), and
// self-comparison (x != x is the standard NaN test).
type floatEqRule struct{}

func (r *floatEqRule) Name() string { return "floateq" }

func (r *floatEqRule) Doc() string {
	return "flag ==/!= between floating-point operands except constant-zero sentinels " +
		"and x != x NaN checks; compare with an explicit tolerance instead"
}

func (r *floatEqRule) Check(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(info, be.X) && !isFloatOperand(info, be.Y) {
				return true
			}
			if isConstZero(info, be.X) || isConstZero(info, be.Y) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x / x == x: the NaN idiom
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison is exact; use an explicit tolerance (or annotate the sentinel)", be.Op)
			return true
		})
	}
}

// isFloatOperand reports whether e has floating-point type (typed or
// untyped).
func isFloatOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstZero reports whether e is a compile-time constant equal to zero.
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
