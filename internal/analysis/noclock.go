package analysis

import (
	"go/ast"
	"go/types"
)

// noClockRule forbids naked time.Now() and time.Since() calls inside
// internal/ and cmd/. Wall-clock reads make runs irreproducible and
// tests flaky; components that need the current time must take an
// injectable clock seam (a Clock func() time.Time field defaulting to
// time.Now), and the single defaulting call site carries an explicit
// //nslint:allow noclock annotation.
type noClockRule struct{ modulePath string }

func (r *noClockRule) Name() string { return "noclock" }

func (r *noClockRule) Doc() string {
	return "forbid naked time.Now()/time.Since() in internal/ and cmd/; " +
		"inject a Clock func() time.Time seam instead"
}

func (r *noClockRule) Check(pass *Pass) {
	if !inEnforcedTree(r.modulePath, pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(pass.Pkg.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(call.Pos(),
					"naked time.%s() is nondeterministic; read the time through an injected Clock func() time.Time", fn.Name())
			}
			return true
		})
	}
}
