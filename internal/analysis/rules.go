package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultRules returns the full netsample rule set for a module rooted
// at modulePath (the module directive of go.mod, "netsample" here):
// five determinism rules (PR 1) plus five concurrency/hot-path rules.
// Rule instances carry per-run state (collected facts), so callers must
// take a fresh set for every Run.
func DefaultRules(modulePath string) []Rule {
	return []Rule{
		&noRandRule{modulePath},
		&noClockRule{modulePath},
		&rngShareRule{modulePath},
		&floatEqRule{},
		&errDropRule{modulePath},
		&atomicFieldRule{modulePath: modulePath},
		&atomicAlignRule{modulePath: modulePath},
		&hotAllocRule{modulePath: modulePath},
		&waitStallRule{modulePath: modulePath},
		&mutexHoldRule{modulePath: modulePath},
	}
}

// inEnforcedTree reports whether pkgPath sits under the module's
// internal/ or cmd/ trees, where the determinism rules are mandatory.
// The facade and examples are exempt: they demonstrate the public API
// and may use wall-clock time.
func inEnforcedTree(modulePath, pkgPath string) bool {
	for _, sub := range []string{"/internal", "/cmd"} {
		p := modulePath + sub
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call expression invokes, unwrapping
// parentheses and generic instantiations. It returns nil for calls whose
// callee is not a named object (e.g. an immediately invoked func literal).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isModulePkg reports whether pkg belongs to the module (or one of its
// subpackages).
func isModulePkg(modulePath string, pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == modulePath || strings.HasPrefix(p, modulePath+"/")
}

// isDistRNGPtr reports whether t is *dist.RNG for the module's
// internal/dist package.
func isDistRNGPtr(modulePath string, t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil &&
		obj.Pkg().Path() == modulePath+"/internal/dist"
}
