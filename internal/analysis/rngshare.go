package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rngShareRule enforces the single-goroutine contract of dist.RNG. The
// generator is documented "not safe for concurrent use"; sharing one
// stream across goroutines is both a data race and a determinism hazard,
// because the interleaving of draws then depends on scheduling. The rule
// flags (a) a *dist.RNG variable captured by a `go func() {...}` literal
// and (b) the same *dist.RNG variable passed as an argument to more than
// one goroutine launched in the same function. RNG.Split() is the
// sanctioned escape: derive an independent child stream per goroutine.
type rngShareRule struct{ modulePath string }

func (r *rngShareRule) Name() string { return "rngshare" }

func (r *rngShareRule) Doc() string {
	return "flag a *dist.RNG captured by a go func literal or passed to more than one " +
		"goroutine in the same function; use RNG.Split() for per-goroutine streams"
}

func (r *rngShareRule) Check(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.checkFunc(pass, info, fd.Body)
		}
	}
}

// checkFunc inspects one function body: every go statement inside it
// (including those nested in literals) is examined for RNG captures, and
// RNG variables handed as arguments to goroutines are counted across the
// whole body.
func (r *rngShareRule) checkFunc(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	passed := make(map[*types.Var][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			r.checkCapture(pass, info, lit)
		}
		for _, arg := range g.Call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && isDistRNGPtr(r.modulePath, v.Type()) {
					passed[v] = append(passed[v], id.Pos())
				}
			}
		}
		return true
	})
	for v, sites := range passed {
		if len(sites) > 1 {
			pass.Reportf(sites[1],
				"*dist.RNG %s is passed to %d goroutines in this function; RNG is single-goroutine, give each goroutine its own stream via Split()",
				v.Name(), len(sites))
		}
	}
}

// checkCapture reports uses, inside the goroutine literal, of RNG-typed
// variables (including struct fields reached through a captured receiver)
// that are declared outside the literal.
func (r *rngShareRule) checkCapture(pass *Pass, info *types.Info, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !isDistRNGPtr(r.modulePath, v.Type()) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			pass.Reportf(id.Pos(),
				"*dist.RNG %s is captured by a goroutine; RNG is single-goroutine, derive a child stream with Split() before the go statement",
				v.Name())
		}
		return true
	})
}
