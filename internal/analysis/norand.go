package analysis

import "strconv"

// noRandRule forbids the standard-library randomness packages inside
// internal/ and cmd/. All stochastic behavior in the reproduction must
// flow through internal/dist.RNG so that a single 64-bit seed fully
// determines every trace, sample and score; math/rand's global state and
// crypto/rand's entropy source both break run-to-run reproducibility.
type noRandRule struct{ modulePath string }

var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func (r *noRandRule) Name() string { return "norand" }

func (r *noRandRule) Doc() string {
	return "forbid math/rand, math/rand/v2 and crypto/rand in internal/ and cmd/; " +
		"all randomness must come from a seeded internal/dist.RNG"
}

func (r *noRandRule) Check(pass *Pass) {
	if !inEnforcedTree(r.modulePath, pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenRandImports[path] {
				pass.Reportf(imp.Pos(),
					"import of %s breaks seeded determinism; draw randomness from a *dist.RNG instead", path)
			}
		}
	}
}
