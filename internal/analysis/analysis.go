// Package analysis is a stdlib-only static-analysis framework for the
// netsample module, built on go/parser, go/ast and go/types. It exists
// because every experimental result in this reproduction depends on
// bit-for-bit determinism and on a hot path with hard concurrency and
// allocation contracts: traces, samples and φ-scores must regenerate
// identically from a 64-bit seed, and the streaming pipeline's per-packet
// path must stay lock-clean and allocation-free. The rules in this
// package machine-check the invariants that make that true — all
// randomness flows through internal/dist.RNG, wall-clock reads go through
// injectable clock seams, RNGs stay confined to one goroutine, floats are
// never compared with ==, errors from module functions are never silently
// discarded, atomic fields are never mixed with plain access, 64-bit
// atomics are 8-byte aligned, annotated hot paths do not allocate,
// goroutines are tied to shutdown seams, and mutexes are never held
// across blocking operations.
//
// Analysis runs over a Module: the type-checked packages plus a
// module-local call graph (static calls and interface dispatch resolved
// against module implementations), so rules can propagate per-function
// facts through callees. Packages are analyzed in parallel; diagnostics
// come out deterministically ordered.
//
// Findings can be suppressed case-by-case with an annotation on the
// offending line or the line directly above it:
//
//	//nslint:allow <rule> <reason>
//
// The reason is mandatory; an allow comment without one is itself
// reported. Two further directives mark the hot-path contract on function
// declarations: //nslint:hotpath (a hotalloc closure root) and
// //nslint:coldpath <reason> (a pruning boundary the closure does not
// cross). The framework is exposed through cmd/nslint (CLI) and the
// module's tier-1 lint_test.go, so `go test ./...` fails on any new
// violation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// AllowPrefix is the comment prefix that suppresses a diagnostic.
const AllowPrefix = "//nslint:allow"

// Diagnostic is one rule finding at a concrete source position.
type Diagnostic struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String renders the conventional file:line:col: message [rule] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// Rule is one static-analysis check. Check inspects a fully type-checked
// package and reports findings through the Pass.
type Rule interface {
	// Name is the short identifier used in diagnostics and allow comments.
	Name() string
	// Doc is a one-paragraph description of what the rule enforces and why.
	Doc() string
	// Check runs the rule over one package.
	Check(*Pass)
}

// Collector is an optional Rule extension for rules that need
// module-wide facts before checking any single package. Collect is
// called once per package, before any Check call runs; calls to one
// rule's Collect are serialized, so the rule may accumulate state in
// plain fields.
type Collector interface {
	Collect(*Pass)
}

// Module is the unit of analysis: the loaded packages plus the
// module-local call graph rules use to propagate facts through callees.
type Module struct {
	Pkgs  []*Package
	Graph *CallGraph
}

// NewModule builds the call graph over pkgs and returns the analysis
// context shared by all rules.
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs, Graph: buildCallGraph(pkgs)}
}

// HotClosure returns the transitive //nslint:hotpath closure of the
// module, in deterministic BFS order.
func (m *Module) HotClosure() []HotEntry { return m.Graph.HotClosure() }

// Pass carries one (package, rule) run and collects its diagnostics.
type Pass struct {
	Pkg    *Package
	Module *Module
	rule   string
	diags  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// AllowSite is one //nslint:allow annotation found in the module, with
// whether it actually suppressed a diagnostic during the run. The
// suppression-hygiene test uses this to fail on stale allows.
type AllowSite struct {
	File   string
	Line   int
	Rule   string
	Reason string
	Used   bool
}

// allowKey identifies one allow annotation site.
type allowKey struct {
	file string
	line int
	rule string
}

// Run executes every rule over every package and returns the surviving
// diagnostics sorted by file, line and column. Diagnostics annotated with
// a well-formed //nslint:allow comment (same line or the line directly
// above) are suppressed; malformed allow comments — unknown syntax or a
// missing reason — are reported under the pseudo-rule "nslint" and cannot
// themselves be suppressed.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	diags, _ := NewModule(pkgs).RunAudit(rules)
	return diags
}

// RunAudit is Run plus the module's allow-annotation inventory, each
// site marked used or stale. Packages run in parallel: rules implementing
// Collector first see every package (collect phase), then every rule
// checks every package (check phase); diagnostics are merged in package
// order so output is deterministic.
func (m *Module) RunAudit(rules []Rule) ([]Diagnostic, []AllowSite) {
	perPkg := make([][]Diagnostic, len(m.Pkgs))
	allowsPerPkg := make([][]*AllowSite, len(m.Pkgs))

	var collectors []Rule
	collectMu := make(map[Rule]*sync.Mutex)
	for _, r := range rules {
		if _, ok := r.(Collector); ok {
			collectors = append(collectors, r)
			collectMu[r] = &sync.Mutex{}
		}
	}
	if len(collectors) > 0 {
		m.forEachPkg(func(i int, pkg *Package) {
			for _, r := range collectors {
				mu := collectMu[r]
				mu.Lock()
				r.(Collector).Collect(&Pass{Pkg: pkg, Module: m, rule: r.Name(), diags: &perPkg[i]})
				mu.Unlock()
			}
		})
	}
	m.forEachPkg(func(i int, pkg *Package) {
		for _, f := range pkg.Files {
			collectAllows(pkg.Fset, f, &allowsPerPkg[i], &perPkg[i])
		}
		for _, r := range rules {
			r.Check(&Pass{Pkg: pkg, Module: m, rule: r.Name(), diags: &perPkg[i]})
		}
	})

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	diags = append(diags, m.directiveDiags()...)

	allowed := make(map[allowKey]*AllowSite)
	var allows []AllowSite
	sites := make([]*AllowSite, 0)
	for _, pkgAllows := range allowsPerPkg {
		sites = append(sites, pkgAllows...)
	}
	for _, a := range sites {
		allowed[allowKey{a.File, a.Line, a.Rule}] = a
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != "nslint" {
			if a, ok := allowed[allowKey{d.File, d.Line, d.Rule}]; ok {
				a.Used = true
				continue
			}
			if a, ok := allowed[allowKey{d.File, d.Line - 1, d.Rule}]; ok {
				a.Used = true
				continue
			}
		}
		kept = append(kept, d)
	}
	sortDiags(kept)
	for _, a := range sites {
		allows = append(allows, *a)
	}
	sort.Slice(allows, func(i, j int) bool {
		if allows[i].File != allows[j].File {
			return allows[i].File < allows[j].File
		}
		return allows[i].Line < allows[j].Line
	})
	return kept, allows
}

// forEachPkg runs fn over every package concurrently.
func (m *Module) forEachPkg(fn func(i int, pkg *Package)) {
	var wg sync.WaitGroup
	for i, pkg := range m.Pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			fn(i, pkg)
		}(i, pkg)
	}
	wg.Wait()
}

// directiveDiags reports malformed or misplaced hotpath/coldpath
// directives under the unsuppressible "nslint" pseudo-rule.
func (m *Module) directiveDiags() []Diagnostic {
	var out []Diagnostic
	for _, site := range m.Graph.directives {
		pos := site.pkg.Fset.Position(site.pos)
		var msg string
		switch {
		case site.badForm != "":
			msg = site.badForm
		case !site.consumed:
			msg = fmt.Sprintf("misplaced %s directive: it must appear in a function declaration's doc comment", site.text)
		default:
			continue
		}
		out = append(out, Diagnostic{
			Rule: "nslint", Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: msg,
		})
	}
	return out
}

// sortDiags orders diagnostics by file, line, column, then rule.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Rule < diags[j].Rule
	})
}

// isFuncDirective reports whether a comment is a hotpath/coldpath
// function directive (exact prefix followed by end-of-comment or space).
func isFuncDirective(text string) bool {
	for _, prefix := range []string{HotpathPrefix, ColdpathPrefix} {
		if rest, ok := strings.CutPrefix(text, prefix); ok {
			if rest == "" || strings.HasPrefix(rest, " ") {
				return true
			}
		}
	}
	return false
}

// collectAllows scans one file's comments for allow annotations. A valid
// annotation names a rule and gives a non-empty reason; anything else
// under the nslint: prefix — other than the function directives handled
// by the call graph — is reported so that a typo cannot silently disable
// enforcement.
func collectAllows(fset *token.FileSet, f *ast.File, allows *[]*AllowSite, diags *[]Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//nslint:") {
				continue
			}
			if isFuncDirective(text) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest, ok := strings.CutPrefix(text, AllowPrefix)
			if !ok {
				*diags = append(*diags, Diagnostic{
					Rule: "nslint", Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("unrecognized nslint directive %q (supported: %s <rule> <reason>, %s, %s <reason>)", text, AllowPrefix, HotpathPrefix, ColdpathPrefix),
				})
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				*diags = append(*diags, Diagnostic{
					Rule: "nslint", Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("allow annotation needs a rule and a reason: %s <rule> <reason>", AllowPrefix),
				})
				continue
			}
			*allows = append(*allows, &AllowSite{
				File:   pos.Filename,
				Line:   pos.Line,
				Rule:   fields[0],
				Reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
			})
		}
	}
}
