// Package analysis is a stdlib-only static-analysis framework for the
// netsample module, built on go/parser, go/ast and go/types. It exists
// because every experimental result in this reproduction depends on
// bit-for-bit determinism: traces, samples and φ-scores must regenerate
// identically from a 64-bit seed. The rules in this package machine-check
// the invariants that make that true — all randomness flows through
// internal/dist.RNG, wall-clock reads go through injectable clock seams,
// RNGs stay confined to one goroutine, floats are never compared with ==,
// and errors from module functions are never silently discarded.
//
// Findings can be suppressed case-by-case with an annotation on the
// offending line or the line directly above it:
//
//	//nslint:allow <rule> <reason>
//
// The reason is mandatory; an allow comment without one is itself
// reported. The framework is exposed through cmd/nslint (CLI) and the
// module's tier-1 lint_test.go, so `go test ./...` fails on any new
// violation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AllowPrefix is the comment prefix that suppresses a diagnostic.
const AllowPrefix = "//nslint:allow"

// Diagnostic is one rule finding at a concrete source position.
type Diagnostic struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String renders the conventional file:line:col: message [rule] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// Rule is one static-analysis check. Check inspects a fully type-checked
// package and reports findings through the Pass.
type Rule interface {
	// Name is the short identifier used in diagnostics and allow comments.
	Name() string
	// Doc is a one-paragraph description of what the rule enforces and why.
	Doc() string
	// Check runs the rule over one package.
	Check(*Pass)
}

// Pass carries one (package, rule) run and collects its diagnostics.
type Pass struct {
	Pkg   *Package
	rule  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// allowKey identifies one allow annotation site.
type allowKey struct {
	file string
	line int
	rule string
}

// Run executes every rule over every package and returns the surviving
// diagnostics sorted by file, line and column. Diagnostics annotated with
// a well-formed //nslint:allow comment (same line or the line directly
// above) are suppressed; malformed allow comments — unknown syntax or a
// missing reason — are reported under the pseudo-rule "nslint" and cannot
// themselves be suppressed.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	allowed := make(map[allowKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectAllows(pkg.Fset, f, allowed, &diags)
		}
		for _, r := range rules {
			r.Check(&Pass{Pkg: pkg, rule: r.Name(), diags: &diags})
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != "nslint" &&
			(allowed[allowKey{d.File, d.Line, d.Rule}] ||
				allowed[allowKey{d.File, d.Line - 1, d.Rule}]) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		if kept[i].Col != kept[j].Col {
			return kept[i].Col < kept[j].Col
		}
		return kept[i].Rule < kept[j].Rule
	})
	return kept
}

// collectAllows scans one file's comments for allow annotations. A valid
// annotation names a rule and gives a non-empty reason; anything else
// under the nslint: prefix is reported so that a typo cannot silently
// disable enforcement.
func collectAllows(fset *token.FileSet, f *ast.File, allowed map[allowKey]bool, diags *[]Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//nslint:") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest, ok := strings.CutPrefix(text, AllowPrefix)
			if !ok {
				*diags = append(*diags, Diagnostic{
					Rule: "nslint", Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("unrecognized nslint directive %q (only %s <rule> <reason> is supported)", text, AllowPrefix),
				})
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				*diags = append(*diags, Diagnostic{
					Rule: "nslint", Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("allow annotation needs a rule and a reason: %s <rule> <reason>", AllowPrefix),
				})
				continue
			}
			allowed[allowKey{pos.Filename, pos.Line, fields[0]}] = true
		}
	}
}
