// Package allow is the nslint golden corpus for the //nslint:allow
// annotation: a well-formed annotation suppresses exactly its named
// rule, on its own line or trailing the finding.
package allow

// Suppressed carries a correct annotation on the line above: no
// finding.
func Suppressed(a, b float64) bool {
	//nslint:allow floateq corpus: deliberate exact comparison
	return a == b
}

// Trailing carries a correct annotation on the same line: no finding.
func Trailing(a, b float64) bool {
	return a == b //nslint:allow floateq corpus: deliberate exact comparison
}

// WrongRule names a different rule, so the floateq finding survives.
func WrongRule(a, b float64) bool {
	//nslint:allow errdrop corpus: names the wrong rule
	return a == b // want `floating-point == comparison is exact`
}

// FarAway is annotated two lines up, which is out of range: the
// annotation must sit on the finding's line or directly above it.
func FarAway(a, b float64) bool {
	//nslint:allow floateq corpus: too far from the finding

	return a == b // want `floating-point == comparison is exact`
}
