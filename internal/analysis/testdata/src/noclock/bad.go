// Package noclock is the nslint golden corpus for the noclock rule.
package noclock

import "time"

// Stamp reads the wall clock directly, which the rule forbids.
func Stamp() time.Time {
	return time.Now() // want `naked time\.Now\(\) is nondeterministic`
}

// Age reads elapsed wall time directly.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want `naked time\.Since\(\) is nondeterministic`
}
