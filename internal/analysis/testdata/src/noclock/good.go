package noclock

import "time"

// Stamper is the sanctioned pattern: an injectable clock seam. Holding
// the time.Now function value (without calling it) is allowed.
type Stamper struct {
	Clock func() time.Time
}

// NewStamper defaults the seam to the real clock by reference, not by
// call.
func NewStamper() *Stamper {
	return &Stamper{Clock: time.Now}
}

// Stamp reads the injected clock.
func (s *Stamper) Stamp() time.Time {
	return s.Clock()
}
