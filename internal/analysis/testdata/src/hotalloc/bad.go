// Package hotalloc is the nslint golden corpus for the hotalloc rule:
// no allocating construct in a //nslint:hotpath closure.
package hotalloc

import "fmt"

// Sink receives scored values; its module implementations are part of
// the closure through interface dispatch.
type Sink interface {
	Consume(v any)
}

type pair struct {
	a, b int
}

type table struct {
	counts map[string]int
}

// Hot is a hot-path root: every allocating construct below is a
// finding.
//
//nslint:hotpath
func Hot(xs []int, out []int, tab *table, key []byte, sink Sink, v pair) []int {
	out = append(out, xs...) // want `append may grow its backing array`
	m := map[string]int{}    // want `map literal allocates`
	_ = m
	s := []int{1, 2, 3} // want `slice literal allocates`
	_ = s
	p := &pair{} // want `&composite literal escapes to the heap`
	_ = p
	f := func() {} // want `func literal allocates a closure`
	_ = f
	go spin()                   // want `go statement allocates a goroutine`
	tab.counts["k"] = 1         // want `map write may grow the table`
	_ = string(key)             // want `string\(bytes\) conversion copies`
	_ = tab.counts[string(key)] // free form: immediate map index
	sink.Consume(v)             // want `boxes the value on the heap`
	return out
}

// Describe shows the make/new/fmt/concat findings on a second root.
//
//nslint:hotpath
func Describe(name string, n int) string {
	buf := make([]byte, 0, 64) // want `make allocates`
	_ = buf
	q := new(pair) // want `new allocates`
	_ = q
	s := fmt.Sprintf("%d", n) // want `fmt.Sprintf allocates`
	return s + name           // want `non-constant string concatenation allocates`
}

// spin is pulled into the closure by Hot's go statement; it must stay
// clean, and is.
func spin() {
	for i := 0; i < 8; i++ {
		_ = i
	}
}

// buffered implements Sink, so it is reachable from Hot through
// interface dispatch: its allocation is still a finding.
type buffered struct {
	vals []any
}

func (b *buffered) Consume(v any) {
	b.vals = append(b.vals, v) // want `append may grow its backing array`
}
