package hotalloc

// Index is a hot-path root that stays within the contract: index
// arithmetic, slice reads and writes, calls to clean helpers, and the
// map-index string conversion idiom.
//
//nslint:hotpath
func Index(xs []int, out []int, tab *table, key []byte) int {
	n := 0
	for i := range xs {
		out[i&(len(out)-1)] = xs[i]
		n += lookup(tab, key)
	}
	return n
}

// lookup is in the closure via Index and is clean: a map read does not
// allocate, and string(key) as an immediate map index is free.
func lookup(tab *table, key []byte) int {
	return tab.counts[string(key)]
}

// Flush is called from Index's package but carries a coldpath boundary:
// its per-window allocations are amortized and deliberately outside the
// static contract.
//
//nslint:coldpath corpus: per-window flush, allocation amortized across the window
func Flush(tab *table) []string {
	keys := make([]string, 0, len(tab.counts))
	for k := range tab.counts {
		keys = append(keys, k)
	}
	return keys
}

// Cut is a root that calls the coldpath boundary: the closure stops at
// Flush, so its allocations are not findings.
//
//nslint:hotpath
func Cut(tab *table) int {
	return len(Flush(tab))
}

// setup is not in any hotpath closure: it may allocate freely.
func setup(n int) *table {
	return &table{counts: make(map[string]int, n)}
}
