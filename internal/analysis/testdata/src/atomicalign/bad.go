// Package atomicalign is the nslint golden corpus for the atomicalign
// rule: 64-bit sync/atomic targets must sit at 8-byte-aligned offsets
// under 32-bit struct layout.
package atomicalign

import "sync/atomic"

// counters places a 4-byte field before the 64-bit atomic, leaving hits
// at offset 4 on 386/arm: AddUint64 panics there.
type counters struct {
	ready uint32
	hits  uint64 // want `64-bit atomic field hits is at 32-bit offset 4`
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

// window is clean on its own (seq at offset 0)...
type window struct {
	seq uint64
}

func stamp(w *window) {
	atomic.StoreUint64(&w.seq, 1)
}

// ...but slot embeds it at offset 4, breaking seq's alignment.
type slot struct {
	kind uint32
	w    window // want `embeds a struct with 64-bit atomic fields at 32-bit offset 4`
}
