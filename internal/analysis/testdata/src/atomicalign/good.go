package atomicalign

import "sync/atomic"

// orderedCounters puts the 64-bit atomic first: offset 0 is 8-aligned
// on every target.
type orderedCounters struct {
	hits  uint64
	ready uint32
}

func bumpOrdered(c *orderedCounters) {
	atomic.AddUint64(&c.hits, 1)
}

// typedCounters uses atomic.Uint64, which carries its own align64
// marker and may sit anywhere.
type typedCounters struct {
	ready uint32
	hits  atomic.Uint64
}

func bumpTyped(c *typedCounters) {
	c.hits.Add(1)
}

// plain64 holds a 64-bit field that is never touched atomically; its
// offset is unconstrained.
type plain64 struct {
	tag uint32
	n   uint64
}

func total(p *plain64) uint64 {
	return p.n
}
