// Package errdrop is the nslint golden corpus for the errdrop rule.
package errdrop

import "errors"

// Fallible is an in-module function with an error result.
func Fallible() error { return errors.New("boom") }

// Pair returns a value and an error.
func Pair() (int, error) { return 0, errors.New("boom") }

// Dropped discards errors from in-module calls.
func Dropped() {
	Fallible() // want `error result of Fallible is silently discarded`
	Pair()     // want `error result of Pair is silently discarded`
}
