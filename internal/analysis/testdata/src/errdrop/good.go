package errdrop

import "fmt"

// Handled deals with every in-module error explicitly.
func Handled() error {
	if err := Fallible(); err != nil {
		return err
	}
	_ = Fallible()   // explicit discard is visible in review, so it is allowed
	defer Fallible() // deferred calls are exempt (idiomatic Close-on-read)
	// Out-of-module calls are not this rule's business even when they
	// return an error.
	fmt.Println("done")
	return nil
}
