package floateq

import "math"

// ZeroSentinel checks the exact-zero sentinel, which is exempt.
func ZeroSentinel(a float64) bool {
	return a == 0
}

// IsNaN uses the self-comparison NaN idiom, which is exempt.
func IsNaN(a float64) bool {
	return a != a
}

// Close is the sanctioned comparison: an explicit tolerance.
func Close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12
}

// Ints compares integers, which is always fine.
func Ints(a, b int) bool {
	return a == b
}
