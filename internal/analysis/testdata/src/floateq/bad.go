// Package floateq is the nslint golden corpus for the floateq rule.
package floateq

// Same compares two computed floats exactly.
func Same(a, b float64) bool {
	return a == b // want `floating-point == comparison is exact`
}

// Different compares two computed floats exactly with !=.
func Different(a, b float32) bool {
	return a != b // want `floating-point != comparison is exact`
}

// MixedConst compares against a non-zero constant, which is still
// exact.
func MixedConst(a float64) bool {
	return a == 0.25 // want `floating-point == comparison is exact`
}
