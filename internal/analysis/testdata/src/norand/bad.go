// Package norand is the nslint golden corpus for the norand rule.
package norand

import (
	"crypto/rand"     // want "import of crypto/rand breaks seeded determinism"
	mrand "math/rand" // want "import of math/rand breaks seeded determinism"
)

// Draw uses the forbidden sources so the imports are live.
func Draw() int {
	var b [1]byte
	_, _ = rand.Read(b[:])
	return mrand.Intn(10) + int(b[0])
}
