package norand

import "netsample/internal/dist"

// DrawSeeded is the sanctioned pattern: randomness from a seeded
// dist.RNG.
func DrawSeeded(rng *dist.RNG) int {
	return rng.IntN(10)
}
