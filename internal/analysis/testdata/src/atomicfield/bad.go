// Package atomicfield is the nslint golden corpus for the atomicfield
// rule: a field accessed via sync/atomic anywhere must be accessed
// atomically everywhere.
package atomicfield

import "sync/atomic"

// ring mixes atomic and plain access on head; tail is plain-only and
// fine.
type ring struct {
	head uint64
	tail uint64
}

// produce advances head atomically, establishing the atomic contract.
func produce(r *ring) {
	atomic.AddUint64(&r.head, 1)
}

// observe reads head without the atomic op: the classic torn-read /
// lost-wakeup seed.
func observe(r *ring) uint64 {
	return r.head // want `field head is accessed with sync/atomic elsewhere`
}

// reset writes head plainly, racing with produce.
func reset(r *ring) {
	r.head = 0 // want `field head is accessed with sync/atomic elsewhere`
	r.tail = 0
}
