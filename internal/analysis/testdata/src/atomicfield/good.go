package atomicfield

import "sync/atomic"

// typedRing uses the typed wrappers, which make mixed access impossible
// by construction.
type typedRing struct {
	head atomic.Uint64
	tail atomic.Uint64
}

func produceTyped(r *typedRing) {
	r.head.Add(1)
}

func observeTyped(r *typedRing) uint64 {
	return r.head.Load()
}

// counter is atomically accessed everywhere it is touched: clean.
type counter struct {
	n uint64
}

func bump(c *counter) {
	atomic.AddUint64(&c.n, 1)
}

func read(c *counter) uint64 {
	return atomic.LoadUint64(&c.n)
}
