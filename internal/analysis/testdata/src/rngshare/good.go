package rngshare

import "netsample/internal/dist"

// SplitPerGoroutine is the sanctioned pattern: derive one child stream
// per goroutine before launching it.
func SplitPerGoroutine(rng *dist.RNG, work func(*dist.RNG)) {
	go work(rng.Split())
	go work(rng.Split())
}

// OwnedInside creates the RNG inside the goroutine, so nothing is
// shared.
func OwnedInside(seed uint64, out chan<- float64) {
	go func() {
		rng := dist.NewRNG(seed)
		out <- rng.Float64()
	}()
}
