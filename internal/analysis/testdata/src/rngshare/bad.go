// Package rngshare is the nslint golden corpus for the rngshare rule.
package rngshare

import (
	"sync"

	"netsample/internal/dist"
)

// Captured shares one RNG between the parent and a goroutine.
func Captured(rng *dist.RNG) float64 {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rng.Float64() // want `\*dist\.RNG rng is captured by a goroutine`
	}()
	x := rng.Float64()
	wg.Wait()
	return x
}

// FannedOut hands the same RNG to two goroutines.
func FannedOut(rng *dist.RNG, work func(*dist.RNG)) {
	go work(rng)
	go work(rng) // want `\*dist\.RNG rng is passed to 2 goroutines`
}
