package waitstall

import "sync"

// pooled is the worker-pool idiom: Add before launch, Wait at the end.
func pooled(n int, work func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// closer signals completion by closing the channel it feeds.
func closer(ch chan int, n int) {
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			ch <- i
		}
	}()
}

// oneshot signals completion with a single send.
func oneshot(done chan struct{}, work func()) {
	go func() {
		work()
		done <- struct{}{}
	}()
}

// emit's declaration closes its output channel, so launching it by name
// is tied to the done-channel seam.
func emit(ch chan int, n int) {
	defer close(ch)
	for i := 0; i < n; i++ {
		ch <- i
	}
}

func launchEmit(n int) chan int {
	ch := make(chan int, n)
	go emit(ch, n)
	return ch
}
