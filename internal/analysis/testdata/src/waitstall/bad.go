// Package waitstall is the nslint golden corpus for the waitstall rule:
// every goroutine must be tied to a shutdown seam.
package waitstall

// leak launches a goroutine with no WaitGroup, no done channel, and no
// completion signal: it outlives whatever spawned it.
func leak(ch chan int) {
	go func() { // want `goroutine is not tied to a shutdown seam`
		for range ch {
		}
	}()
}

// drain never signals completion, so launching it by name is just as
// much of a leak.
func drain(ch chan int) {
	for range ch {
	}
}

func leakNamed(ch chan int) {
	go drain(ch) // want `goroutine is not tied to a shutdown seam`
}
