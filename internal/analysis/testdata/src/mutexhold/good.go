package mutexhold

import "sync"

type gauge struct {
	mu  sync.Mutex
	n   int
	out chan int
}

// bump keeps the critical section to the state update and publishes
// after the unlock.
func (g *gauge) bump() {
	g.mu.Lock()
	g.n++
	v := g.n
	g.mu.Unlock()
	g.out <- v
}

// poll uses a select with a default under the lock: a non-blocking
// probe, not a stall.
func (g *gauge) poll() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.out:
		g.n = v
	default:
	}
	return g.n
}

// snapshot copies under the lock and hands the blocking send to a
// goroutine that owns no lock. The literal's send belongs to the
// goroutine, not to snapshot's critical section.
func (g *gauge) snapshot(done chan<- int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.n
	go func() {
		done <- v
	}()
}

// reader takes the lock, reads, unlocks, then drains: the blocking
// range sits outside the region.
func (g *gauge) reader() int {
	g.mu.Lock()
	v := g.n
	g.mu.Unlock()
	for w := range g.out {
		v += w
	}
	return v
}
