// Package mutexhold is the nslint golden corpus for the mutexhold rule:
// no blocking operation while a mutex is held.
package mutexhold

import (
	"sync"
	"time"
)

type agent struct {
	mu  sync.Mutex
	n   int
	out chan int
}

// publish sends on a channel inside the critical section: one slow
// consumer stalls every other path that takes mu.
func (a *agent) publish() {
	a.mu.Lock()
	a.out <- a.n // want `channel send while holding a mutex`
	a.mu.Unlock()
}

// pace sleeps under a deferred unlock: the lock is held for the whole
// sleep.
func (a *agent) pace() {
	a.mu.Lock()
	defer a.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding a mutex`
	a.n++
}

// wait blocks on a select with no default while holding the lock.
func (a *agent) wait(stop chan struct{}) {
	a.mu.Lock()
	defer a.mu.Unlock()
	select { // want `select without a default while holding a mutex`
	case <-stop:
	case v := <-a.out:
		a.n = v
	}
}

// flush hides the blocking op one call deep: the may-block fact
// propagates through the call graph.
func (a *agent) flush() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainOut() // want `call to drainOut while holding a mutex: it performs a blocking operation`
}

// relay hides it two calls deep.
func (a *agent) relay() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.forward() // want `call to forward while holding a mutex: it may block \(via forwardOnce\)`
}

func (a *agent) forward() {
	a.forwardOnce()
}

func (a *agent) forwardOnce() {
	a.drainOut()
}

func (a *agent) drainOut() {
	for range a.out {
	}
}
