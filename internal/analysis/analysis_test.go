package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadCorpus loads one testdata/src package through the module loader,
// giving it its natural import path under internal/ so the scoped rules
// apply.
func loadCorpus(t *testing.T, loader *Loader, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	ip := loader.ModulePath + "/internal/analysis/testdata/src/" + name
	pkg, err := loader.LoadDir(dir, ip)
	if err != nil {
		t.Fatalf("load corpus %s: %v", name, err)
	}
	return pkg
}

// wantKey locates one expectation site.
type wantKey struct {
	file string
	line int
}

// parseWants extracts `// want "re"` / `// want `+"`re`"+“ expectation
// comments from the package's files. Several expectations may share one
// line.
func parseWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	out := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if !strings.HasPrefix(c.Text, "//") || idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[idx+len("want "):])
				for rest != "" {
					var quote byte = rest[0]
					if quote != '"' && quote != '`' {
						t.Fatalf("%s:%d: malformed want expectation %q", pos.Filename, pos.Line, c.Text)
					}
					end := strings.IndexByte(rest[1:], quote)
					if end < 0 {
						t.Fatalf("%s:%d: unterminated want expectation %q", pos.Filename, pos.Line, c.Text)
					}
					re, err := regexp.Compile(rest[1 : 1+end])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					key := wantKey{pos.Filename, pos.Line}
					out[key] = append(out[key], re)
					rest = strings.TrimSpace(rest[2+end:])
				}
			}
		}
	}
	return out
}

// corpusRules returns the rules to run over one corpus directory: the
// rule the directory is named after, or the full set for the "allow"
// corpus, which tests the suppression machinery itself. Scoping keeps
// each corpus focused — the rngshare corpus's bare `go work(rng)` is
// that rule's point, not a waitstall specimen.
func corpusRules(t *testing.T, modulePath, name string) []Rule {
	t.Helper()
	all := DefaultRules(modulePath)
	if name == "allow" {
		return all
	}
	for _, r := range all {
		if r.Name() == name {
			return []Rule{r}
		}
	}
	t.Fatalf("corpus directory %q does not name a rule", name)
	return nil
}

// TestGoldenCorpus runs each corpus package under its directory's rule
// and checks the diagnostics against the `// want` expectations: every
// expectation must be matched on its line, and no diagnostic may appear
// without one.
func TestGoldenCorpus(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			pkg := loadCorpus(t, loader, e.Name())
			wants := parseWants(t, pkg)
			diags := Run([]*Package{pkg}, corpusRules(t, loader.ModulePath, e.Name()))
			matched := make(map[wantKey][]bool)
			for key, res := range wants {
				matched[key] = make([]bool, len(res))
			}
		diagLoop:
			for _, d := range diags {
				key := wantKey{d.File, d.Line}
				for i, re := range wants[key] {
					if !matched[key][i] && re.MatchString(d.Message) {
						matched[key][i] = true
						continue diagLoop
					}
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
			for key, res := range wants {
				for i, ok := range matched[key] {
					if !ok {
						t.Errorf("%s:%d: expected diagnostic matching %q was not reported",
							key.file, key.line, wants[key][i])
					}
				}
				_ = res
			}
		})
	}
}

// writeTempPkg materializes one corpus file in a temp dir and loads it.
func writeTempPkg(t *testing.T, loader *Loader, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, loader.ModulePath+"/internal/tmpcorpus")
	if err != nil {
		t.Fatalf("load temp corpus: %v", err)
	}
	return pkg
}

// TestAllowWithoutReasonIsReported checks that a reasonless allow
// annotation is itself a finding and suppresses nothing.
func TestAllowWithoutReasonIsReported(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := writeTempPkg(t, loader, `package tmpcorpus

func Eq(a, b float64) bool {
	//nslint:allow floateq
	return a == b
}
`)
	diags := Run([]*Package{pkg}, DefaultRules(loader.ModulePath))
	var sawBadAllow, sawFloatEq bool
	for _, d := range diags {
		switch d.Rule {
		case "nslint":
			sawBadAllow = true
		case "floateq":
			sawFloatEq = true
		}
	}
	if !sawBadAllow {
		t.Error("reasonless allow annotation was not reported")
	}
	if !sawFloatEq {
		t.Error("reasonless allow annotation suppressed the floateq finding")
	}
}

// TestUnknownDirectiveIsReported checks that a typoed nslint directive
// cannot silently disable enforcement.
func TestUnknownDirectiveIsReported(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := writeTempPkg(t, loader, `package tmpcorpus

func Eq(a, b float64) bool {
	//nslint:alow floateq typo in the directive name
	return a == b
}
`)
	diags := Run([]*Package{pkg}, DefaultRules(loader.ModulePath))
	var sawDirective bool
	for _, d := range diags {
		if d.Rule == "nslint" && strings.Contains(d.Message, "unrecognized nslint directive") {
			sawDirective = true
		}
	}
	if !sawDirective {
		t.Errorf("typoed directive was not reported; got %v", diags)
	}
}

// TestDiagnosticString pins the rendered diagnostic format the CLI and
// CI logs rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "noclock", File: "x/y.go", Line: 3, Col: 7, Message: "m"}
	want := "x/y.go:3:7: m [noclock]"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if fmt.Sprint(d) != want {
		t.Errorf("Sprint mismatch")
	}
}

// TestPatternNormalization pins the CLI pattern grammar.
func TestPatternNormalization(t *testing.T) {
	l := &Loader{ModulePath: "netsample"}
	cases := []struct {
		pat     string
		ip      string
		subtree bool
	}{
		{"./...", "netsample", true},
		{".", "netsample", false},
		{"all", "netsample", true},
		{"./internal/dist", "netsample/internal/dist", false},
		{"internal/dist", "netsample/internal/dist", false},
		{"netsample/internal/dist", "netsample/internal/dist", false},
		{"./internal/...", "netsample/internal", true},
	}
	for _, c := range cases {
		ip, subtree := l.normalizePattern(c.pat)
		if ip != c.ip || subtree != c.subtree {
			t.Errorf("normalizePattern(%q) = (%q, %v), want (%q, %v)",
				c.pat, ip, subtree, c.ip, c.subtree)
		}
	}
}
