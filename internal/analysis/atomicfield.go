package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicFieldRule reports struct fields that are accessed through
// sync/atomic somewhere in the module but through a plain read or write
// somewhere else. Mixed access is the classic lost-update/lost-wakeup
// seed on the ring head/tail counters: the plain access is invisible to
// the race the atomic one was supposed to close. Fields of the typed
// atomic wrappers (atomic.Uint64 and friends) are immune by construction
// and preferred; this rule covers the sync/atomic function form.
//
// The rule is a Collector: phase one records, for every struct field in
// the module, each atomic access (the field's address passed to a
// sync/atomic function) and each plain access (any other non-address
// read or write). Phase two reports the plain accesses of every field
// that also has at least one atomic access.
type atomicFieldRule struct {
	modulePath string

	atomic map[*types.Var][]token.Pos // field -> atomic access sites
	plain  map[*types.Var][]token.Pos // field -> plain access sites
}

func (r *atomicFieldRule) Name() string { return "atomicfield" }
func (r *atomicFieldRule) Doc() string {
	return "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere; mixed plain/atomic access hides races from the happens-before edges the atomic calls establish"
}

// Collect records atomic and plain accesses of struct fields in pkg.
func (r *atomicFieldRule) Collect(pass *Pass) {
	if r.atomic == nil {
		r.atomic = make(map[*types.Var][]token.Pos)
		r.plain = make(map[*types.Var][]token.Pos)
	}
	pkg := pass.Pkg
	if !inEnforcedTree(r.modulePath, pkg.Path) {
		return
	}
	// Fields whose address is taken inside a sync/atomic call argument.
	atomicArgs := make(map[ast.Expr]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(pkg.Info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				arg = ast.Unparen(arg)
				if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					atomicArgs[ast.Unparen(ue.X)] = true
				}
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := selectedField(pkg.Info, sel)
			if field == nil {
				return true
			}
			if atomicArgs[ast.Expr(sel)] {
				r.atomic[field] = append(r.atomic[field], sel.Sel.Pos())
				return true
			}
			r.plain[field] = append(r.plain[field], sel.Sel.Pos())
			return true
		})
	}
}

// Check reports, once per package, the plain accesses of mixed fields
// that are located in this package.
func (r *atomicFieldRule) Check(pass *Pass) {
	pkg := pass.Pkg
	if !inEnforcedTree(r.modulePath, pkg.Path) {
		return
	}
	fields := make([]*types.Var, 0, len(r.atomic))
	for field := range r.atomic {
		if len(r.plain[field]) > 0 {
			fields = append(fields, field)
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, field := range fields {
		for _, pos := range r.plain[field] {
			if !posInPackage(pkg, pos) {
				continue
			}
			pass.Reportf(pos, "field %s is accessed with sync/atomic elsewhere; this plain access races with it (use atomic ops or a typed atomic.%s)",
				field.Name(), suggestTypedAtomic(field))
		}
	}
}

// selectedField returns the struct field a selector expression denotes,
// or nil when the selector is a method, package qualifier, or unknown.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// posInPackage reports whether pos falls inside one of pkg's files.
func posInPackage(pkg *Package, pos token.Pos) bool {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}

// suggestTypedAtomic maps a field's plain integer type to the typed
// atomic wrapper that would make mixed access impossible.
func suggestTypedAtomic(field *types.Var) string {
	if b, ok := field.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}
