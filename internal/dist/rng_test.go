package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestNewRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	first1 := c1.Uint64()
	if first1 == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draws")
	}
	// Splitting must be reproducible from the same parent seed.
	parent2 := NewRNG(7)
	d1 := parent2.Split()
	if first1 != d1.Uint64() {
		t.Fatal("split streams not reproducible across identical parents")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	NewRNG(1).IntN(0)
}

func TestUint64NPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64N(0) did not panic")
		}
	}()
	NewRNG(1).Uint64N(0)
}

func TestIntNUniformity(t *testing.T) {
	// Chi-square uniformity check over 8 cells at ~12k draws per cell.
	r := NewRNG(6)
	const cells = 8
	const n = 100000
	var counts [cells]int
	for i := 0; i < n; i++ {
		counts[r.IntN(cells)]++
	}
	expected := float64(n) / cells
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 0.999 quantile of chi-square with 7 df is ~24.3.
	if chi2 > 24.3 {
		t.Fatalf("IntN uniformity chi2 = %v exceeds 24.3", chi2)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(10)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestUint64NPropertyInRange(t *testing.T) {
	r := NewRNG(12)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64N(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
