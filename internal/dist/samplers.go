package dist

import "math"

// Sampler produces random variates from a fixed distribution using the
// supplied generator. Implementations are immutable and safe to share;
// all mutable state lives in the RNG.
type Sampler interface {
	// Sample draws one variate.
	Sample(r *RNG) float64
	// Mean returns the distribution mean, or NaN if undefined.
	Mean() float64
}

// Exponential is an exponential distribution with the given Rate (λ > 0).
// Interarrival processes in the workload generator are built from it.
type Exponential struct{ Rate float64 }

// Sample draws an Exp(Rate) variate by inverse transform.
func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Rate }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Uniform is a continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a U[Lo,Hi) variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is a normal distribution with mean Mu and standard deviation
// Sigma (> 0).
type Normal struct{ Mu, Sigma float64 }

// Sample draws a N(Mu, Sigma²) variate.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Lognormal is a lognormal distribution: exp(N(Mu, Sigma²)). File and
// burst sizes in wide-area traffic are classically lognormal-ish, so the
// bulk-transfer source model uses it.
type Lognormal struct{ Mu, Sigma float64 }

// Sample draws a lognormal variate.
func (l Lognormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Pareto is a Pareto (power-law) distribution with scale Xm > 0 and shape
// Alpha > 0. Heavy-tailed ON periods produce the burstiness that makes
// timer-driven sampling miss dense packet runs, which is the effect the
// paper attributes timer methods' poor interarrival scores to.
type Pareto struct{ Xm, Alpha float64 }

// Sample draws a Pareto variate by inverse transform.
func (p Pareto) Sample(r *RNG) float64 {
	// 1-Float64() is in (0,1], avoiding a zero denominator.
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// Mean returns Alpha·Xm/(Alpha-1) for Alpha > 1, else NaN (infinite mean).
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.NaN()
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Poisson draws a Poisson-distributed count with the given mean. For
// small means it uses Knuth multiplication; for large means a normal
// approximation with continuity correction, which is ample for the
// per-interval flow-arrival counts generated here.
func Poisson(r *RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	k := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	return k
}

// Empirical is a discrete distribution over Values with probabilities
// proportional to Weights. It samples in O(log n) by binary search over
// the cumulative weights. Construct with NewEmpirical.
type Empirical struct {
	values []float64
	cum    []float64 // cumulative weights, strictly increasing
	total  float64
	mean   float64
}

// NewEmpirical builds an Empirical distribution. values and weights must
// have equal non-zero length and weights must be non-negative with a
// positive sum.
func NewEmpirical(values, weights []float64) (*Empirical, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, ErrDomain
	}
	e := &Empirical{
		values: append([]float64(nil), values...),
		cum:    make([]float64, 0, len(weights)),
	}
	var mean float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, ErrDomain
		}
		e.total += w
		e.cum = append(e.cum, e.total)
		mean += w * values[i]
	}
	if e.total <= 0 {
		return nil, ErrDomain
	}
	e.mean = mean / e.total
	return e, nil
}

// Sample draws one of the values with probability proportional to its
// weight.
func (e *Empirical) Sample(r *RNG) float64 {
	u := r.Float64() * e.total
	lo, hi := 0, len(e.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return e.values[lo]
}

// Mean returns the weighted mean of the values.
func (e *Empirical) Mean() float64 { return e.mean }
