package dist

import (
	"errors"
	"math"
)

// ErrDomain is returned (or wrapped) by special functions and quantile
// routines when an argument lies outside the mathematical domain.
var ErrDomain = errors.New("dist: argument outside function domain")

// RegIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
//
// The implementation follows the classic approach: the series expansion
// converges quickly for x < a+1, and the continued fraction (evaluated with
// the modified Lentz algorithm) for x >= a+1. Accuracy is ~1e-14 over the
// ranges used by the chi-square CDF in this study.
func RegIncGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return p, err
	}
	q, err := gammaContinuedFraction(a, x)
	return 1 - q, err
}

// RegIncGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegIncGammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return 1 - p, err
	}
	return gammaContinuedFraction(a, x)
}

const (
	gammaMaxIter = 500
	gammaEps     = 1e-15
)

// gammaSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, errors.New("dist: incomplete gamma series failed to converge")
}

// gammaContinuedFraction evaluates Q(a,x) by Lentz's continued fraction,
// valid for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, errors.New("dist: incomplete gamma continued fraction failed to converge")
}

// NormalCDF returns the standard normal cumulative distribution function
// Φ(z), computed from the error function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1). It uses the
// Beasley-Springer-Moro rational approximation refined by one Halley step
// against NormalCDF, giving roughly 1e-12 accuracy — far tighter than the
// two-decimal z values (e.g. 1.96) the paper's sample-size formula uses.
func NormalQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return 0, ErrDomain
	}
	z := bsmQuantile(p)
	// One Halley refinement step: solve Φ(z) - p = 0.
	e := NormalCDF(z) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z -= u / (1 + z*u/2)
	return z, nil
}

// bsmQuantile is the Beasley-Springer-Moro approximation to the standard
// normal quantile.
func bsmQuantile(p float64) float64 {
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		return y * (((a[3]*r+a[2])*r+a[1])*r + a[0]) /
			((((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1)
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0] + r*(c[1]+r*(c[2]+r*(c[3]+r*(c[4]+r*(c[5]+r*(c[6]+r*(c[7]+r*c[8])))))))
	if y < 0 {
		return -x
	}
	return x
}
