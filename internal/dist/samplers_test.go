package dist

import (
	"math"
	"testing"
)

func sampleMoments(s Sampler, r *RNG, n int) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Sample(r)
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return
}

func TestExponentialSampler(t *testing.T) {
	r := NewRNG(21)
	e := Exponential{Rate: 0.25}
	mean, variance := sampleMoments(e, r, 200000)
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("exp mean %v, want 4", mean)
	}
	if math.Abs(variance-16) > 1 {
		t.Errorf("exp variance %v, want 16", variance)
	}
	if e.Mean() != 4 {
		t.Errorf("Mean() = %v", e.Mean())
	}
}

func TestUniformSampler(t *testing.T) {
	r := NewRNG(22)
	u := Uniform{Lo: 10, Hi: 20}
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 10 || v >= 20 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	if u.Mean() != 15 {
		t.Errorf("Mean() = %v", u.Mean())
	}
}

func TestNormalSampler(t *testing.T) {
	r := NewRNG(23)
	n := Normal{Mu: 100, Sigma: 15}
	mean, variance := sampleMoments(n, r, 200000)
	if math.Abs(mean-100) > 0.3 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-225) > 5 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestLognormalSampler(t *testing.T) {
	r := NewRNG(24)
	l := Lognormal{Mu: 1, Sigma: 0.5}
	mean, _ := sampleMoments(l, r, 300000)
	want := math.Exp(1 + 0.125)
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("lognormal mean %v, want %v", mean, want)
	}
	if math.Abs(l.Mean()-want) > 1e-12 {
		t.Errorf("Mean() = %v", l.Mean())
	}
}

func TestParetoSampler(t *testing.T) {
	r := NewRNG(25)
	p := Pareto{Xm: 2, Alpha: 2.5}
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		v := p.Sample(r)
		if v < 2 {
			t.Fatalf("Pareto below scale: %v", v)
		}
		sum += v
	}
	want := 2.5 * 2 / 1.5
	if mean := sum / n; math.Abs(mean-want)/want > 0.05 {
		t.Errorf("Pareto mean %v, want %v", mean, want)
	}
	if !math.IsNaN((Pareto{Xm: 1, Alpha: 0.9}).Mean()) {
		t.Error("Pareto alpha<=1 should have NaN mean")
	}
}

func TestPoisson(t *testing.T) {
	r := NewRNG(26)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			k := Poisson(r, mean)
			if k < 0 {
				t.Fatalf("negative Poisson count %d", k)
			}
			sum += float64(k)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("Poisson(%v) empirical mean %v", mean, got)
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -3) != 0 {
		t.Error("Poisson with non-positive mean should be 0")
	}
}

func TestEmpirical(t *testing.T) {
	e, err := NewEmpirical([]float64{40, 552, 1500}, []float64{0.5, 0.4, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(27)
	counts := map[float64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[e.Sample(r)]++
	}
	if len(counts) != 3 {
		t.Fatalf("unexpected values: %v", counts)
	}
	if f := float64(counts[40]) / n; math.Abs(f-0.5) > 0.01 {
		t.Errorf("P(40) = %v", f)
	}
	wantMean := 0.5*40 + 0.4*552 + 0.1*1500
	if math.Abs(e.Mean()-wantMean) > 1e-9 {
		t.Errorf("Mean() = %v, want %v", e.Mean(), wantMean)
	}
}

func TestEmpiricalErrors(t *testing.T) {
	if _, err := NewEmpirical(nil, nil); err == nil {
		t.Error("empty empirical should fail")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewEmpirical([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero total weight should fail")
	}
}
