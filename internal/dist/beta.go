package dist

import (
	"errors"
	"math"
)

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1], via the continued fraction
// expansion (Lentz's algorithm) with the standard symmetry switch at
// x = (a+1)/(a+b+2). It underlies the Student's t distribution used for
// small-sample confidence intervals.
func RegIncBeta(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 || math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x < 0 || x > 1 {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	//nslint:allow floateq exact domain endpoint: the series below diverges at x = 1 exactly
	if x == 1 {
		return 1, nil
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	lnFront := lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lnFront)
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaCF(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaCF evaluates the incomplete beta continued fraction.
func betaCF(a, b, x float64) (float64, error) {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= gammaMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return h, nil
		}
	}
	return 0, errors.New("dist: incomplete beta failed to converge")
}

// StudentTCDF returns P(T <= t) for Student's t distribution with df
// degrees of freedom.
func StudentTCDF(t, df float64) (float64, error) {
	if df <= 0 || math.IsNaN(df) || math.IsNaN(t) {
		return 0, ErrDomain
	}
	if t == 0 {
		return 0.5, nil
	}
	x := df / (df + t*t)
	ib, err := RegIncBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	if t > 0 {
		return 1 - ib/2, nil
	}
	return ib / 2, nil
}

// StudentTQuantile returns the t with StudentTCDF(t, df) = p, p in
// (0, 1), by monotone bisection bracketed from the normal quantile.
func StudentTQuantile(p, df float64) (float64, error) {
	if df <= 0 || p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, ErrDomain
	}
	//nslint:allow floateq exact symmetry point: callers pass 0.5 literally for the median
	if p == 0.5 {
		return 0, nil
	}
	// Bracket: t quantiles are farther from 0 than normal ones.
	z, err := NormalQuantile(p)
	if err != nil {
		return 0, err
	}
	var lo, hi float64
	if p > 0.5 {
		lo, hi = 0, math.Max(2*z, 2)
		for {
			c, err := StudentTCDF(hi, df)
			if err != nil {
				return 0, err
			}
			if c >= p {
				break
			}
			hi *= 2
			if math.IsInf(hi, 1) {
				return 0, ErrDomain
			}
		}
	} else {
		hi, lo = 0, math.Min(2*z, -2)
		for {
			c, err := StudentTCDF(lo, df)
			if err != nil {
				return 0, err
			}
			if c <= p {
				break
			}
			lo *= 2
			if math.IsInf(lo, -1) {
				return 0, ErrDomain
			}
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := StudentTCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
