package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x); P(0.5, x) = erf(sqrt(x)).
	cases := []struct {
		a, x, want float64
	}{
		{1, 1, 1 - math.Exp(-1)},
		{1, 5, 1 - math.Exp(-5)},
		{0.5, 0.25, math.Erf(0.5)},
		{0.5, 4, math.Erf(2)},
		{2, 2, 1 - 3*math.Exp(-2)}, // P(2,x)=1-(1+x)e^-x
		{3, 10, 1 - (1+10+50)*math.Exp(-10)},
	}
	for _, c := range cases {
		got, err := RegIncGammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("P(%v,%v): %v", c.a, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%v,%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestRegIncGammaComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 7, 30, 123} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 50, 200} {
			p, err1 := RegIncGammaP(a, x)
			q, err2 := RegIncGammaQ(a, x)
			if err1 != nil || err2 != nil {
				t.Fatalf("a=%v x=%v: %v %v", a, x, err1, err2)
			}
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P+Q = %v at a=%v x=%v", p+q, a, x)
			}
		}
	}
}

func TestRegIncGammaBoundaries(t *testing.T) {
	if p, err := RegIncGammaP(2, 0); err != nil || p != 0 {
		t.Errorf("P(2,0) = %v, %v; want 0, nil", p, err)
	}
	if q, err := RegIncGammaQ(2, 0); err != nil || q != 1 {
		t.Errorf("Q(2,0) = %v, %v; want 1, nil", q, err)
	}
	if p, err := RegIncGammaP(2, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("P(2,inf) = %v, %v; want 1, nil", p, err)
	}
	if _, err := RegIncGammaP(0, 1); err == nil {
		t.Error("P(0,1) should fail")
	}
	if _, err := RegIncGammaP(1, -1); err == nil {
		t.Error("P(1,-1) should fail")
	}
	if _, err := RegIncGammaQ(-2, 1); err == nil {
		t.Error("Q(-2,1) should fail")
	}
}

func TestRegIncGammaMonotoneInX(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(uint64(seed))
		a := 0.1 + 20*r.Float64()
		x1 := 30 * r.Float64()
		x2 := x1 + 10*r.Float64()
		p1, err1 := RegIncGammaP(a, x1)
		p2, err2 := RegIncGammaP(a, x2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 >= p1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-2.5758293035489004, 0.005},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.05, 0.5, 0.9, 0.95, 0.975, 0.999} {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatalf("quantile(%v): %v", p, err)
		}
		if back := NormalCDF(z); math.Abs(back-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestNormalQuantileDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%v) should fail", p)
		}
	}
}

func TestNormalQuantile975(t *testing.T) {
	// The paper's 95% confidence sample-size formula uses z = 1.96.
	z, err := NormalQuantile(0.975)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1.959963984540054) > 1e-9 {
		t.Fatalf("z_{0.975} = %v", z)
	}
}
