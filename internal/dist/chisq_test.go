package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		x, df, want, tol float64
	}{
		{3.841458820694124, 1, 0.95, 1e-9},   // 0.95 quantile, df=1
		{5.991464547107979, 2, 0.95, 1e-9},   // df=2
		{9.487729036781154, 4, 0.95, 1e-9},   // df=4
		{0.7107230213973241, 2, 0.299, 2e-3}, // CDF(x,2)=1-exp(-x/2)
		{2, 2, 1 - math.Exp(-1), 1e-12},
		{18.307038053275146, 10, 0.95, 1e-9},
	}
	for _, c := range cases {
		got, err := ChiSquareCDF(c.x, c.df)
		if err != nil {
			t.Fatalf("CDF(%v,%v): %v", c.x, c.df, err)
		}
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("CDF(%v,%v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareSFComplement(t *testing.T) {
	for _, df := range []float64{1, 2, 4, 7, 20} {
		for _, x := range []float64{0.1, 1, 5, 20, 60} {
			c, err1 := ChiSquareCDF(x, df)
			s, err2 := ChiSquareSF(x, df)
			if err1 != nil || err2 != nil {
				t.Fatalf("df=%v x=%v: %v %v", df, x, err1, err2)
			}
			if math.Abs(c+s-1) > 1e-12 {
				t.Errorf("CDF+SF = %v at df=%v x=%v", c+s, df, x)
			}
		}
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	if c, err := ChiSquareCDF(-1, 3); err != nil || c != 0 {
		t.Errorf("CDF(-1,3) = %v, %v", c, err)
	}
	if s, err := ChiSquareSF(0, 3); err != nil || s != 1 {
		t.Errorf("SF(0,3) = %v, %v", s, err)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("CDF with df=0 should fail")
	}
	if _, err := ChiSquareQuantile(0.5, -1); err == nil {
		t.Error("Quantile with df<0 should fail")
	}
	if _, err := ChiSquareQuantile(1, 2); err == nil {
		t.Error("Quantile at p=1 should fail")
	}
	if q, err := ChiSquareQuantile(0, 2); err != nil || q != 0 {
		t.Errorf("Quantile(0,2) = %v, %v", q, err)
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 4, 9, 50} {
		for _, p := range []float64{0.01, 0.05, 0.5, 0.95, 0.99} {
			x, err := ChiSquareQuantile(p, df)
			if err != nil {
				t.Fatalf("quantile(%v,%v): %v", p, df, err)
			}
			back, err := ChiSquareCDF(x, df)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("CDF(Quantile(%v,%v)) = %v", p, df, back)
			}
		}
	}
}

func TestChiSquareCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(uint64(seed))
		df := 1 + r.Float64()*30
		x1 := r.Float64() * 50
		x2 := x1 + r.Float64()*20
		c1, err1 := ChiSquareCDF(x1, df)
		c2, err2 := ChiSquareCDF(x2, df)
		return err1 == nil && err2 == nil && c2 >= c1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquareAgainstSimulation(t *testing.T) {
	// Empirical check: sum of squares of df standard normals.
	r := NewRNG(99)
	const df = 5
	const n = 20000
	crit, err := ChiSquareQuantile(0.95, df)
	if err != nil {
		t.Fatal(err)
	}
	exceed := 0
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < df; j++ {
			z := r.NormFloat64()
			s += z * z
		}
		if s > crit {
			exceed++
		}
	}
	frac := float64(exceed) / n
	if math.Abs(frac-0.05) > 0.01 {
		t.Fatalf("empirical exceedance %v, want ~0.05", frac)
	}
}
