package dist

import "math"

// ChiSquareCDF returns P(X <= x) for a chi-square random variable with df
// degrees of freedom. It is the regularized lower incomplete gamma
// function P(df/2, x/2). df must be positive; x below zero yields 0.
func ChiSquareCDF(x float64, df float64) (float64, error) {
	if df <= 0 || math.IsNaN(df) {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncGammaP(df/2, x/2)
}

// ChiSquareSF returns the survival function P(X > x) — the significance
// level of an observed chi-square statistic x on df degrees of freedom.
// This is the quantity the paper's chi-square tests compare against 0.05.
func ChiSquareSF(x float64, df float64) (float64, error) {
	if df <= 0 || math.IsNaN(df) {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 1, nil
	}
	return RegIncGammaQ(df/2, x/2)
}

// ChiSquareQuantile returns the x such that ChiSquareCDF(x, df) = p, for
// p in [0, 1). It brackets the root and bisects; the CDF is strictly
// increasing so the root is unique. Used to derive critical values (e.g.
// the 0.95 quantile for a test at the 0.05 level).
func ChiSquareQuantile(p float64, df float64) (float64, error) {
	if df <= 0 || p < 0 || p >= 1 || math.IsNaN(p) {
		return 0, ErrDomain
	}
	if p == 0 {
		return 0, nil
	}
	// Bracket: the mean is df and variance 2df; expand upward until the
	// CDF exceeds p.
	lo, hi := 0.0, df+10*math.Sqrt(2*df)+10
	for {
		c, err := ChiSquareCDF(hi, df)
		if err != nil {
			return 0, err
		}
		if c >= p {
			break
		}
		hi *= 2
		if math.IsInf(hi, 1) {
			return 0, ErrDomain
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := ChiSquareCDF(mid, df)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
