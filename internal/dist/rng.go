// Package dist provides the probability substrate for the sampling study:
// a deterministic, seedable random number generator, special functions
// (regularized incomplete gamma, error-function based normal CDF and
// quantile), the chi-square distribution used for goodness-of-fit
// significance levels, and samplers for the distributions the synthetic
// workload generator draws from (exponential, Pareto, lognormal, normal,
// Poisson).
//
// Everything in this package is pure Go with no dependencies beyond the
// standard library math package, and every stochastic component is
// reproducible from an explicit 64-bit seed so that experiments regenerate
// identical traces and samples run-to-run.
package dist

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded through SplitMix64. It is not safe for concurrent
// use; create one RNG per goroutine (see Split).
//
// xoshiro256** passes BigCrush and is far cheaper than crypto randomness,
// which matters because trace generation draws hundreds of millions of
// variates. The zero RNG is not valid; construct with NewRNG.
type RNG struct {
	s         [4]uint64
	spare     float64 // cached second variate from the polar normal method
	haveSpare bool
}

// splitmix64 advances the SplitMix64 state and returns the next output.
// It is used only to expand a seed into xoshiro state, per Blackman &
// Vigna's recommendation, so that similar seeds yield unrelated streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator whose stream is fully determined by seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r in place to the stream NewRNG(seed) would
// produce, discarding any cached normal variate. Hot replication loops
// use it to reuse one generator allocation across deterministically
// re-seeded replications.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A pathological all-zero state cannot occur: splitmix64 is a bijection
	// composed with a non-zero xor-shift mix, and four consecutive outputs
	// of zero would require a cycle of length < 2^64.
	r.spare = 0
	r.haveSpare = false
}

// Split derives an independent generator from r. The child stream is a
// deterministic function of the parent state, and the parent advances, so
// repeated Splits yield distinct, reproducible children. Use Split to give
// each traffic source or replication its own stream without sharing state
// across goroutines.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd3833e804f4c574b)
}

// SplitInto reseeds child to the stream the next Split call would have
// returned, advancing the parent identically, but without allocating.
func (r *RNG) SplitInto(child *RNG) {
	child.Reseed(r.Uint64() ^ 0xd3833e804f4c574b)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless rejection method keeps the result unbiased.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("dist: IntN called with non-positive n")
	}
	return int(r.Uint64N(uint64(n)))
}

// Uint64N returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("dist: Uint64N called with zero n")
	}
	// Lemire 2019: multiply-shift with rejection of the biased low range.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Int64N returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 {
	if n <= 0 {
		panic("dist: Int64N called with non-positive n")
	}
	return int64(r.Uint64N(uint64(n)))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.IntN(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, via the Fisher-Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.IntN(i+1))
	}
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. The spare variate is cached between calls.
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1) by
// inverse transform. Scale by 1/lambda for rate lambda.
func (r *RNG) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1 - r.Float64())
}
