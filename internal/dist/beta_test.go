package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x; I_x(1, b) = 1-(1-x)^b; I_x(a, 1) = x^a.
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},
		{1, 2, 0.5, 1 - 0.25},
		{2, 1, 0.5, 0.25},
		{1, 3, 0.2, 1 - math.Pow(0.8, 3)},
		{5, 1, 0.9, math.Pow(0.9, 5)},
		{0.5, 0.5, 0.5, 0.5}, // arcsine distribution median
	}
	for _, c := range cases {
		got, err := RegIncBeta(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("I_%v(%v,%v): %v", c.x, c.a, c.b, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaBoundsAndErrors(t *testing.T) {
	if v, err := RegIncBeta(2, 3, 0); err != nil || v != 0 {
		t.Errorf("x=0: %v, %v", v, err)
	}
	if v, err := RegIncBeta(2, 3, 1); err != nil || v != 1 {
		t.Errorf("x=1: %v, %v", v, err)
	}
	for _, bad := range []struct{ a, b, x float64 }{
		{0, 1, 0.5}, {1, -1, 0.5}, {1, 1, -0.1}, {1, 1, 1.1}, {math.NaN(), 1, 0.5},
	} {
		if _, err := RegIncBeta(bad.a, bad.b, bad.x); err == nil {
			t.Errorf("accepted a=%v b=%v x=%v", bad.a, bad.b, bad.x)
		}
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(uint64(seed))
		a := 0.2 + 10*r.Float64()
		b := 0.2 + 10*r.Float64()
		x1 := r.Float64()
		x2 := x1 + (1-x1)*r.Float64()
		v1, err1 := RegIncBeta(a, b, x1)
		v2, err2 := RegIncBeta(a, b, x2)
		return err1 == nil && err2 == nil && v2 >= v1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Classic t-table values: P(T <= t) for given df.
	cases := []struct {
		t, df, want float64
		tol         float64
	}{
		{0, 5, 0.5, 1e-12},
		{12.706, 1, 0.975, 1e-4}, // t_{0.975, 1}
		{2.776, 4, 0.975, 1e-4},  // t_{0.975, 4}
		{2.228, 10, 0.975, 1e-4}, // t_{0.975, 10}
		{1.96, 1e6, 0.975, 1e-4}, // converges to normal
		{-2.776, 4, 0.025, 1e-4}, // symmetry
	}
	for _, c := range cases {
		got, err := StudentTCDF(c.t, c.df)
		if err != nil {
			t.Fatalf("tcdf(%v,%v): %v", c.t, c.df, err)
		}
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("tcdf(%v,%v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 30, 200} {
		for _, p := range []float64{0.01, 0.05, 0.5, 0.9, 0.975, 0.999} {
			q, err := StudentTQuantile(p, df)
			if err != nil {
				t.Fatalf("quantile(%v,%v): %v", p, df, err)
			}
			back, err := StudentTCDF(q, df)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("CDF(Quantile(%v, df=%v)) = %v", p, df, back)
			}
		}
	}
}

func TestStudentTQuantileWiderThanNormal(t *testing.T) {
	// Small-sample t intervals must be wider than normal ones.
	z, err := NormalQuantile(0.975)
	if err != nil {
		t.Fatal(err)
	}
	for _, df := range []float64{2, 5, 10, 30} {
		q, err := StudentTQuantile(0.975, df)
		if err != nil {
			t.Fatal(err)
		}
		if q <= z {
			t.Errorf("t quantile %v at df=%v not wider than z=%v", q, df, z)
		}
	}
}

func TestStudentTErrors(t *testing.T) {
	if _, err := StudentTCDF(1, 0); err == nil {
		t.Error("df=0 accepted")
	}
	if _, err := StudentTQuantile(0, 5); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := StudentTQuantile(1, 5); err == nil {
		t.Error("p=1 accepted")
	}
}
