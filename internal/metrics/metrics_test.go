package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"netsample/internal/dist"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestChiSquareKnown(t *testing.T) {
	// Classic die example: observed vs fair expectation.
	observed := []float64{5, 8, 9, 8, 10, 20}
	expected := []float64{10, 10, 10, 10, 10, 10}
	chi2, err := ChiSquare(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	want := (25.0 + 4 + 1 + 4 + 0 + 100) / 10
	if !almost(chi2, want, 1e-12) {
		t.Fatalf("chi2 = %v, want %v", chi2, want)
	}
}

func TestChiSquareZeroForIdentical(t *testing.T) {
	v := []float64{3, 7, 12}
	chi2, err := ChiSquare(v, v)
	if err != nil || chi2 != 0 {
		t.Fatalf("chi2 self = %v, %v", chi2, err)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquare(nil, nil); err != ErrShape {
		t.Error("empty should fail")
	}
	if _, err := ChiSquare([]float64{1}, []float64{1, 2}); err != ErrShape {
		t.Error("length mismatch should fail")
	}
	if _, err := ChiSquare([]float64{1}, []float64{0}); err != ErrShape {
		t.Error("zero expected should fail")
	}
	if _, err := ChiSquare([]float64{-1}, []float64{1}); err != ErrShape {
		t.Error("negative observed should fail")
	}
	if _, err := ChiSquare([]float64{math.NaN()}, []float64{1}); err != ErrShape {
		t.Error("NaN should fail")
	}
	if _, err := ChiSquare([]float64{math.Inf(1)}, []float64{1}); err != ErrShape {
		t.Error("Inf should fail")
	}
}

func TestSignificance(t *testing.T) {
	// chi2 = 3.84 with 1 df has significance ~0.05.
	observed := []float64{100 + 9.8, 100 - 9.8}
	expected := []float64{100, 100}
	sig, err := Significance(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	// chi2 = 2*(9.8^2)/100 = 1.9208 → p = 0.1657
	if !almost(sig, 0.16576, 1e-3) {
		t.Fatalf("sig = %v", sig)
	}
}

func TestSignificanceDFError(t *testing.T) {
	if _, err := Significance([]float64{5}, []float64{5}, 0); err == nil {
		t.Error("single bin should fail (0 df)")
	}
	if _, err := Significance([]float64{5, 5}, []float64{5, 5}, 1); err == nil {
		t.Error("fitted eats the last df")
	}
}

func TestCost(t *testing.T) {
	c, err := Cost([]float64{10, 20, 30}, []float64{12, 15, 33})
	if err != nil {
		t.Fatal(err)
	}
	if c != 2+5+3 {
		t.Fatalf("cost = %v", c)
	}
}

func TestCostAllowsZeroExpected(t *testing.T) {
	c, err := Cost([]float64{5}, []float64{0})
	if err != nil || c != 5 {
		t.Fatalf("cost = %v, %v", c, err)
	}
}

func TestRelativeCost(t *testing.T) {
	rc, err := RelativeCost([]float64{10}, []float64{20}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rc, 0.2, 1e-12) {
		t.Fatalf("rcost = %v", rc)
	}
	if _, err := RelativeCost([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, err := RelativeCost([]float64{1}, []float64{1}, 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestPaxsonX2SampleSizeInvariance(t *testing.T) {
	// Scaling both vectors by the same factor leaves X² unchanged when
	// proportions are unchanged and counts scale linearly... X² is
	// invariant when O and E both scale: (kO-kE)²/(kE)² = (O-E)²/E².
	o := []float64{90, 210, 700}
	e := []float64{100, 200, 700}
	x1, err := PaxsonX2(o, e)
	if err != nil {
		t.Fatal(err)
	}
	o10 := []float64{900, 2100, 7000}
	e10 := []float64{1000, 2000, 7000}
	x2, err := PaxsonX2(o10, e10)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x1, x2, 1e-12) {
		t.Fatalf("X² not scale-invariant: %v vs %v", x1, x2)
	}
	// Whereas raw chi-square grows by the factor.
	c1, _ := ChiSquare(o, e)
	c2, _ := ChiSquare(o10, e10)
	if !almost(c2, 10*c1, 1e-9) {
		t.Fatalf("chi2 scaling unexpected: %v vs %v", c1, c2)
	}
}

func TestAvgNormDeviation(t *testing.T) {
	o := []float64{110, 90}
	e := []float64{100, 100}
	k, err := AvgNormDeviation(o, e)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(k, 0.1, 1e-12) { // each bin deviates by exactly 10%
		t.Fatalf("k = %v", k)
	}
}

func TestPhiZeroPerfectSample(t *testing.T) {
	v := []float64{500, 300, 200}
	phi, err := Phi(v, v)
	if err != nil || phi != 0 {
		t.Fatalf("phi self = %v, %v", phi, err)
	}
}

func TestPhiKnown(t *testing.T) {
	o := []float64{120, 80}
	e := []float64{100, 100}
	// chi2 = 400/100 + 400/100 = 8; n = 400; phi = sqrt(0.02).
	phi, err := Phi(o, e)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(phi, math.Sqrt(0.02), 1e-12) {
		t.Fatalf("phi = %v", phi)
	}
}

func TestPhiSampleSizeInsensitivity(t *testing.T) {
	// The paper chose phi because it is insensitive to sample size:
	// scaling O and E by a common factor leaves phi unchanged.
	o := []float64{120, 80}
	e := []float64{100, 100}
	phi1, _ := Phi(o, e)
	o2 := []float64{1200, 800}
	e2 := []float64{1000, 1000}
	phi2, _ := Phi(o2, e2)
	if !almost(phi1, phi2, 1e-12) {
		t.Fatalf("phi not scale-invariant: %v vs %v", phi1, phi2)
	}
}

func TestPhiZeroTotal(t *testing.T) {
	if _, err := Phi([]float64{0}, []float64{0}); err == nil {
		t.Error("zero totals should fail")
	}
}

func TestMetricsNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dist.NewRNG(uint64(seed))
		n := 2 + r.IntN(8)
		o := make([]float64, n)
		e := make([]float64, n)
		for i := range o {
			o[i] = float64(r.IntN(1000))
			e[i] = float64(1 + r.IntN(1000))
		}
		chi2, err := ChiSquare(o, e)
		if err != nil || chi2 < 0 {
			return false
		}
		c, err := Cost(o, e)
		if err != nil || c < 0 {
			return false
		}
		x2, err := PaxsonX2(o, e)
		if err != nil || x2 < 0 {
			return false
		}
		phi, err := Phi(o, e)
		if err != nil || phi < 0 {
			return false
		}
		sig, err := Significance(o, e, 0)
		return err == nil && sig >= 0 && sig <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateConsistent(t *testing.T) {
	o := []float64{90, 210, 700}
	e := []float64{100, 200, 700}
	rep, err := Evaluate(o, e, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	chi2, _ := ChiSquare(o, e)
	cost, _ := Cost(o, e)
	phi, _ := Phi(o, e)
	if rep.ChiSquare != chi2 || rep.Cost != cost || rep.Phi != phi {
		t.Fatalf("Evaluate inconsistent: %+v", rep)
	}
	if !almost(rep.RelativeCost, cost*0.02, 1e-12) {
		t.Fatalf("rcost = %v", rep.RelativeCost)
	}
}

func TestEvaluatePropagatesErrors(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{0}, 0.5, 0); err == nil {
		t.Error("bad expected should fail")
	}
	if _, err := Evaluate([]float64{1, 2}, []float64{1, 2}, 0, 0); err == nil {
		t.Error("bad fraction should fail")
	}
}
