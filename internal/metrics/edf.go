package metrics

import (
	"math"
	"sort"
)

// KolmogorovSmirnov returns the two-sample KS statistic: the maximum
// absolute difference between the empirical CDFs of sample and
// population. The paper cites KS as "difficult to apply to wide-area
// network traffic data"; it is provided for the bin-sensitivity ablation,
// which compares metric rankings with and without binning.
func KolmogorovSmirnov(sample, population []float64) (float64, error) {
	if len(sample) == 0 || len(population) == 0 {
		return 0, ErrShape
	}
	s := append([]float64(nil), sample...)
	p := append([]float64(nil), population...)
	sort.Float64s(s)
	sort.Float64s(p)
	var d float64
	i, j := 0, 0
	for i < len(s) && j < len(p) {
		// Step past every occurrence of the smaller value in both samples
		// so tied observations move the two ECDFs together.
		x := s[i]
		if p[j] < x {
			x = p[j]
		}
		//nslint:allow floateq exact tie-stepping over stored sorted sample values
		for i < len(s) && s[i] == x {
			i++
		}
		//nslint:allow floateq exact tie-stepping over stored sorted sample values
		for j < len(p) && p[j] == x {
			j++
		}
		fs := float64(i) / float64(len(s))
		fp := float64(j) / float64(len(p))
		if diff := math.Abs(fs - fp); diff > d {
			d = diff
		}
	}
	return d, nil
}

// AndersonDarling returns the A² statistic of the sample against the
// population's empirical CDF (treating the population as the reference
// distribution, consistent with the paper's treatment of the trace as the
// true parent population). Ties in the reference CDF at 0 or 1 are
// clamped away from the singular endpoints using the standard
// plotting-position adjustment (i-0.5)/n.
func AndersonDarling(sample, population []float64) (float64, error) {
	if len(sample) == 0 || len(population) == 0 {
		return 0, ErrShape
	}
	pop := append([]float64(nil), population...)
	sort.Float64s(pop)
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	n := float64(len(s))
	cdf := func(x float64) float64 {
		// Plotting-position empirical CDF of the population, clamped to
		// (0,1) so the A² logs stay finite.
		k := sort.SearchFloat64s(pop, math.Nextafter(x, math.Inf(1)))
		f := (float64(k) - 0.5) / float64(len(pop))
		const eps = 1e-10
		if f < eps {
			f = eps
		}
		if f > 1-eps {
			f = 1 - eps
		}
		return f
	}
	var sum float64
	for i, x := range s {
		fi := cdf(x)
		fni := cdf(s[len(s)-1-i])
		sum += (2*float64(i) + 1) * (math.Log(fi) + math.Log(1-fni))
	}
	return -n - sum/n, nil
}
