// Package metrics implements the disparity metrics of Section 5.2 of the
// paper, which score how well a sampled distribution matches its parent
// population over a common set of bins:
//
//   - χ² — Pearson's chi-square statistic over observed/expected counts;
//   - significance level of χ² under the chi-square distribution (the
//     basis of the classical goodness-of-fit test);
//   - cost — the l1 norm Σ|Oᵢ-Eᵢ| motivating the service-provider
//     charging example;
//   - relative cost — cost × sampling fraction;
//   - X² — Paxson's sample-size-invariant variant Σ(Oᵢ-Eᵢ)²/Eᵢ²;
//   - k — the average normalized deviation sqrt(X²/B);
//   - φ — Fleiss's phi coefficient sqrt(χ²/n) with n = Σ(Eᵢ+Oᵢ), the
//     metric the paper adopts for its comparison, with φ = 0 indicating a
//     sample that perfectly reflects the parent population.
//
// The package also provides the two classical EDF goodness-of-fit tests
// the paper cites as difficult to apply to wide-area traffic
// (Kolmogorov-Smirnov and Anderson-Darling A²), for completeness and for
// the ablation benchmarks.
//
// Conventions: "observed" is the sample's binned counts scaled up to the
// population size (observed[i] = sample count × granularity), matching how
// the paper compares a sample against the full trace; "expected" is the
// population's binned counts.
package metrics

import (
	"errors"
	"math"

	"netsample/internal/dist"
)

// ErrShape is returned when observed and expected vectors are unusable:
// mismatched lengths, empty, or containing negative or non-finite counts.
var ErrShape = errors.New("metrics: observed/expected vectors unusable")

// validate checks the shared preconditions of the binned metrics.
// requirePositiveE additionally rejects zero expected counts (division).
func validate(observed, expected []float64, requirePositiveE bool) error {
	if len(observed) == 0 || len(observed) != len(expected) {
		return ErrShape
	}
	for i := range observed {
		o, e := observed[i], expected[i]
		if o < 0 || e < 0 || math.IsNaN(o) || math.IsNaN(e) || math.IsInf(o, 0) || math.IsInf(e, 0) {
			return ErrShape
		}
		if requirePositiveE && e == 0 {
			return ErrShape
		}
	}
	return nil
}

// ChiSquare returns Pearson's χ² = Σ (Oᵢ-Eᵢ)²/Eᵢ. Expected counts must be
// strictly positive.
func ChiSquare(observed, expected []float64) (float64, error) {
	if err := validate(observed, expected, true); err != nil {
		return 0, err
	}
	var sum float64
	for i := range observed {
		d := observed[i] - expected[i]
		sum += d * d / expected[i]
	}
	return sum, nil
}

// Significance returns the significance level (p-value) of the χ²
// statistic computed from observed/expected, i.e. P(X > χ²) with
// B-1-fitted degrees of freedom. fitted is the number of independent
// parameters estimated from the data (0 when the expected counts come
// from the known parent population, as in this study).
func Significance(observed, expected []float64, fitted int) (float64, error) {
	chi2, err := ChiSquare(observed, expected)
	if err != nil {
		return 0, err
	}
	df := len(observed) - 1 - fitted
	if df < 1 {
		return 0, errors.New("metrics: non-positive degrees of freedom")
	}
	return dist.ChiSquareSF(chi2, float64(df))
}

// Cost returns the l1 norm Σ|Oᵢ-Eᵢ| between the two count vectors — the
// absolute packet-count discrepancy a traffic-charging provider would owe
// or lose (Section 5.2).
func Cost(observed, expected []float64) (float64, error) {
	if err := validate(observed, expected, false); err != nil {
		return 0, err
	}
	var sum float64
	for i := range observed {
		sum += math.Abs(observed[i] - expected[i])
	}
	return sum, nil
}

// RelativeCost returns Cost × fraction, the paper's "rcost": the l1
// discrepancy credited for the resource savings of sampling at the given
// sampling fraction (e.g. 1/50). fraction must be in (0, 1].
func RelativeCost(observed, expected []float64, fraction float64) (float64, error) {
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		return 0, errors.New("metrics: sampling fraction outside (0,1]")
	}
	c, err := Cost(observed, expected)
	if err != nil {
		return 0, err
	}
	return c * fraction, nil
}

// PaxsonX2 returns X² = Σ (Oᵢ-Eᵢ)²/Eᵢ², the sample-size-invariant variant
// attributed to Paxson in the paper.
func PaxsonX2(observed, expected []float64) (float64, error) {
	if err := validate(observed, expected, true); err != nil {
		return 0, err
	}
	var sum float64
	for i := range observed {
		d := observed[i] - expected[i]
		sum += d * d / (expected[i] * expected[i])
	}
	return sum, nil
}

// AvgNormDeviation returns k = sqrt(X²/B), the average normalized
// deviation across all B bins.
func AvgNormDeviation(observed, expected []float64) (float64, error) {
	x2, err := PaxsonX2(observed, expected)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(x2 / float64(len(observed))), nil
}

// Phi returns Fleiss's φ coefficient sqrt(χ²/n) with n = Σ(Eᵢ+Oᵢ). A
// φ-value of 0 is consistent with a sample that perfectly reflects the
// parent population; larger values indicate poorer samples.
func Phi(observed, expected []float64) (float64, error) {
	chi2, err := ChiSquare(observed, expected)
	if err != nil {
		return 0, err
	}
	var n float64
	for i := range observed {
		n += observed[i] + expected[i]
	}
	if n == 0 {
		return 0, ErrShape
	}
	return math.Sqrt(chi2 / n), nil
}

// Report bundles every Section 5.2 metric for one sample-vs-population
// comparison, as plotted together in Figure 3.
type Report struct {
	ChiSquare    float64
	Significance float64
	Cost         float64
	RelativeCost float64
	PaxsonX2     float64
	AvgNormDev   float64
	Phi          float64
}

// Evaluate computes all metrics at once. fraction is the sampling
// fraction used for RelativeCost; fitted is passed to Significance.
func Evaluate(observed, expected []float64, fraction float64, fitted int) (Report, error) {
	var r Report
	var err error
	if r.ChiSquare, err = ChiSquare(observed, expected); err != nil {
		return Report{}, err
	}
	if r.Significance, err = Significance(observed, expected, fitted); err != nil {
		return Report{}, err
	}
	if r.Cost, err = Cost(observed, expected); err != nil {
		return Report{}, err
	}
	if r.RelativeCost, err = RelativeCost(observed, expected, fraction); err != nil {
		return Report{}, err
	}
	if r.PaxsonX2, err = PaxsonX2(observed, expected); err != nil {
		return Report{}, err
	}
	if r.AvgNormDev, err = AvgNormDeviation(observed, expected); err != nil {
		return Report{}, err
	}
	if r.Phi, err = Phi(observed, expected); err != nil {
		return Report{}, err
	}
	return r, nil
}
