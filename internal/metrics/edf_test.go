package metrics

import (
	"math"
	"testing"

	"netsample/internal/dist"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Fatalf("KS of identical = %v", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("KS of disjoint = %v, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 0.5, 1e-12) {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err != ErrShape {
		t.Error("empty sample should fail")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err != ErrShape {
		t.Error("empty population should fail")
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	r := dist.NewRNG(61)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// For same-distribution samples of n=m=2000, D beyond 0.08 would
	// reject at far below the 0.001 level.
	if d > 0.08 {
		t.Fatalf("KS same-dist = %v, unexpectedly large", d)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	r := dist.NewRNG(62)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1 // shifted
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.2 {
		t.Fatalf("KS shifted = %v, unexpectedly small", d)
	}
}

func TestAndersonDarlingSelfSample(t *testing.T) {
	r := dist.NewRNG(63)
	pop := make([]float64, 5000)
	for i := range pop {
		pop[i] = r.NormFloat64()
	}
	a2, err := AndersonDarling(pop, pop)
	if err != nil {
		t.Fatal(err)
	}
	// A self-sample against its own ECDF should give a small statistic
	// (for a perfect uniform PIT, A² ≈ some O(1) constant; sanity bound).
	if math.IsNaN(a2) || math.IsInf(a2, 0) {
		t.Fatalf("A² not finite: %v", a2)
	}
	if a2 > 2 {
		t.Fatalf("A² self-sample = %v, unexpectedly large", a2)
	}
}

func TestAndersonDarlingDetectsShift(t *testing.T) {
	r := dist.NewRNG(64)
	pop := make([]float64, 5000)
	shifted := make([]float64, 1000)
	same := make([]float64, 1000)
	for i := range pop {
		pop[i] = r.NormFloat64()
	}
	for i := range shifted {
		shifted[i] = r.NormFloat64() + 0.5
		same[i] = r.NormFloat64()
	}
	a2shift, err := AndersonDarling(shifted, pop)
	if err != nil {
		t.Fatal(err)
	}
	a2same, err := AndersonDarling(same, pop)
	if err != nil {
		t.Fatal(err)
	}
	if a2shift <= a2same {
		t.Fatalf("A² failed to separate: shifted %v vs same %v", a2shift, a2same)
	}
}

func TestAndersonDarlingEmpty(t *testing.T) {
	if _, err := AndersonDarling(nil, []float64{1}); err != ErrShape {
		t.Error("empty sample should fail")
	}
	if _, err := AndersonDarling([]float64{1}, nil); err != ErrShape {
		t.Error("empty population should fail")
	}
}
