package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ReportWireSize is the encoded size of a Report: seven float64 fields
// as little-endian IEEE-754 bit patterns.
const ReportWireSize = 7 * 8

// AppendReport appends r's wire encoding to buf. The encoding is
// bit-exact — every field travels as its raw float64 bit pattern — so a
// report survives a network round trip bit-identical, which the
// pipeline's deterministic-mode equivalence guarantee depends on.
func AppendReport(buf []byte, r Report) []byte {
	for _, v := range [...]float64{
		r.ChiSquare, r.Significance, r.Cost, r.RelativeCost,
		r.PaxsonX2, r.AvgNormDev, r.Phi,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeReport decodes a Report from the first ReportWireSize bytes of
// buf, returning the remainder.
func DecodeReport(buf []byte) (Report, []byte, error) {
	if len(buf) < ReportWireSize {
		return Report{}, nil, fmt.Errorf("metrics: report needs %d bytes, have %d",
			ReportWireSize, len(buf))
	}
	fields := [7]float64{}
	for i := range fields {
		fields[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	r := Report{
		ChiSquare:    fields[0],
		Significance: fields[1],
		Cost:         fields[2],
		RelativeCost: fields[3],
		PaxsonX2:     fields[4],
		AvgNormDev:   fields[5],
		Phi:          fields[6],
	}
	return r, buf[ReportWireSize:], nil
}
