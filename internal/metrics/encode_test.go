package metrics

import (
	"math"
	"testing"
)

// TestReportWireRoundTrip checks the encoding is bit-exact for finite,
// non-finite, and signed-zero values alike.
func TestReportWireRoundTrip(t *testing.T) {
	cases := []Report{
		{},
		{ChiSquare: 1.5, Significance: 0.25, Cost: 1e6, RelativeCost: 0.125,
			PaxsonX2: 3.75, AvgNormDev: 0.001, Phi: 0.0421},
		{ChiSquare: math.Inf(1), Significance: math.NaN(),
			Cost: math.Copysign(0, -1), RelativeCost: math.SmallestNonzeroFloat64,
			PaxsonX2: math.MaxFloat64, AvgNormDev: math.Inf(-1), Phi: -0.0},
	}
	for i, want := range cases {
		buf := AppendReport([]byte{0xAA}, want) // non-empty prefix must be preserved
		if buf[0] != 0xAA || len(buf) != 1+ReportWireSize {
			t.Fatalf("case %d: bad buffer shape: len %d", i, len(buf))
		}
		got, rest, err := DecodeReport(buf[1:])
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Errorf("case %d: %d bytes left over", i, len(rest))
		}
		gw := [...]float64{want.ChiSquare, want.Significance, want.Cost,
			want.RelativeCost, want.PaxsonX2, want.AvgNormDev, want.Phi}
		gg := [...]float64{got.ChiSquare, got.Significance, got.Cost,
			got.RelativeCost, got.PaxsonX2, got.AvgNormDev, got.Phi}
		for f := range gw {
			if math.Float64bits(gw[f]) != math.Float64bits(gg[f]) {
				t.Errorf("case %d field %d: bits %x != %x", i, f,
					math.Float64bits(gw[f]), math.Float64bits(gg[f]))
			}
		}
	}
}

// TestDecodeReportShortBuffer checks truncated input errors cleanly.
func TestDecodeReportShortBuffer(t *testing.T) {
	for n := 0; n < ReportWireSize; n++ {
		if _, _, err := DecodeReport(make([]byte, n)); err == nil {
			t.Fatalf("decode accepted %d of %d bytes", n, ReportWireSize)
		}
	}
}
