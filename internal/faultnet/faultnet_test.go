package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestInjectorDeterminism: the fault schedule is a pure function of the
// seed and the wrap order — two injectors with the same seed draw
// bit-identical schedules.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{FaultProb: 0.8, MaxOffset: 128}
	a := NewInjector(42, cfg)
	b := NewInjector(42, cfg)
	for i := 0; i < 200; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
	c, d := NewInjector(42, cfg), NewInjector(43, cfg)
	same := true
	for i := 0; i < 200; i++ {
		if c.Next() != d.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical 200-fault schedules")
	}
}

// TestInjectorBudget: once the budget is spent every further connection
// is clean, which is what lets a chaos soak guarantee eventual success.
func TestInjectorBudget(t *testing.T) {
	in := NewInjector(1, Config{FaultProb: 1, Budget: 3})
	for i := 0; i < 10; i++ {
		f := in.Next()
		if i < 3 && f.Kind == None {
			t.Fatalf("draw %d: FaultProb 1 within budget drew None", i)
		}
		if i >= 3 && f.Kind != None {
			t.Fatalf("draw %d: fault %v past budget", i, f.Kind)
		}
	}
	if got := in.Faulted(); got != 3 {
		t.Fatalf("Faulted() = %d, want 3", got)
	}
	if got := in.Wrapped(); got != 10 {
		t.Fatalf("Wrapped() = %d, want 10", got)
	}
}

// TestInjectorDrawBounds: drawn schedules stay inside the configured
// bounds and respect the per-kind constraints.
func TestInjectorDrawBounds(t *testing.T) {
	cfg := Config{FaultProb: 1, MaxOffset: 32, CorruptWindow: 4, MaxDelay: 2 * time.Millisecond}
	in := NewInjector(7, cfg)
	for i := 0; i < 500; i++ {
		f := in.Next()
		if f.Kind == None || f.Kind >= numKinds {
			t.Fatalf("draw %d: kind %v out of range", i, f.Kind)
		}
		switch f.Kind {
		case Corrupt:
			if f.Offset < 0 || f.Offset >= cfg.CorruptWindow {
				t.Fatalf("draw %d: corrupt offset %d outside window %d", i, f.Offset, cfg.CorruptWindow)
			}
		case Partial:
			if !f.OnWrite {
				t.Fatalf("draw %d: partial fault on the read path", i)
			}
			fallthrough
		default:
			if f.Offset < 0 || f.Offset >= cfg.MaxOffset {
				t.Fatalf("draw %d: offset %d outside [0, %d)", i, f.Offset, cfg.MaxOffset)
			}
		}
		if f.Bit > 7 {
			t.Fatalf("draw %d: bit %d out of range", i, f.Bit)
		}
		if f.Delay <= 0 || f.Delay > cfg.MaxDelay {
			t.Fatalf("draw %d: delay %v outside (0, %v]", i, f.Delay, cfg.MaxDelay)
		}
	}
}

// faultedPipe wires a fault schedule onto one end of a net.Pipe and
// drains the peer in the background, returning the faulted conn, the
// peer, and a way to collect everything the peer received.
func faultedPipe(t *testing.T, f Fault) (net.Conn, net.Conn, func() []byte) {
	t.Helper()
	in := NewInjector(0, Config{})
	local, peer := net.Pipe()
	faulted := in.WrapFault(local, f)
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			n, err := peer.Read(buf)
			mu.Lock()
			got = append(got, buf[:n]...)
			mu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	return faulted, peer, func() []byte {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return got
	}
}

// TestWriteDrop: the writer is told every byte landed while the peer
// sees the stream truncated at the fault offset, then EOF — the
// lost-response failure the ack protocol exists for.
func TestWriteDrop(t *testing.T) {
	faulted, _, recv := faultedPipe(t, Fault{Kind: Drop, OnWrite: true, Offset: 4})
	n, err := faulted.Write([]byte("hello world"))
	if n != 11 || err != nil {
		t.Fatalf("Write = (%d, %v), want (11, nil): drop must claim success", n, err)
	}
	if got := string(recv()); got != "hell" {
		t.Fatalf("peer received %q, want %q", got, "hell")
	}
	// The transport is closed: further writes still claim success but
	// deliver nothing.
	if n, err := faulted.Write([]byte("more")); n != 4 || err != nil {
		t.Fatalf("post-drop Write = (%d, %v), want (4, nil)", n, err)
	}
}

// TestWritePartial: the writer learns about the short write; the peer
// sees only the forwarded prefix.
func TestWritePartial(t *testing.T) {
	faulted, _, recv := faultedPipe(t, Fault{Kind: Partial, OnWrite: true, Offset: 4})
	n, err := faulted.Write([]byte("hello world"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Write = (%d, %v), want (4, ErrShortWrite)", n, err)
	}
	if got := string(recv()); got != "hell" {
		t.Fatalf("peer received %q, want %q", got, "hell")
	}
}

// TestWriteReset: the operation in flight fails with ErrReset after the
// prefix crosses the wire.
func TestWriteReset(t *testing.T) {
	faulted, _, recv := faultedPipe(t, Fault{Kind: Reset, OnWrite: true, Offset: 4})
	n, err := faulted.Write([]byte("hello world"))
	if n != 4 || !errors.Is(err, ErrReset) {
		t.Fatalf("Write = (%d, %v), want (4, ErrReset)", n, err)
	}
	if got := string(recv()); got != "hell" {
		t.Fatalf("peer received %q, want %q", got, "hell")
	}
	if _, err := faulted.Write([]byte("more")); !errors.Is(err, ErrReset) {
		t.Fatalf("post-reset Write err = %v, want ErrReset", err)
	}
}

// TestWriteCorrupt: exactly one scheduled bit flips, at an absolute
// stream offset that spans write boundaries, and the caller's buffer is
// untouched.
func TestWriteCorrupt(t *testing.T) {
	faulted, peer, recv := faultedPipe(t, Fault{Kind: Corrupt, OnWrite: true, Offset: 3, Bit: 5})
	first := []byte("ab")
	second := []byte("cdef")
	if _, err := faulted.Write(first); err != nil {
		t.Fatal(err)
	}
	if _, err := faulted.Write(second); err != nil {
		t.Fatal(err)
	}
	_ = faulted.Close()
	_ = peer.Close()
	want := []byte("abcdef")
	want[3] ^= 1 << 5
	if got := recv(); string(got) != string(want) {
		t.Fatalf("peer received %q, want %q", got, want)
	}
	if string(second) != "cdef" {
		t.Fatalf("caller buffer mutated to %q", second)
	}
}

// TestReadDrop: the faulted side reads the stream truncated at the
// offset, then EOF, and the transport is closed underneath the peer.
func TestReadDrop(t *testing.T) {
	in := NewInjector(0, Config{})
	local, peer := net.Pipe()
	faulted := in.WrapFault(local, Fault{Kind: Drop, OnWrite: false, Offset: 4})
	go func() {
		_, _ = peer.Write([]byte("hello world"))
	}()
	got, err := io.ReadAll(faulted)
	if err != nil {
		t.Fatalf("ReadAll err = %v, want nil (drop ends in EOF)", err)
	}
	if string(got) != "hell" {
		t.Fatalf("read %q, want %q", got, "hell")
	}
}

// TestReadReset: reads fail with ErrReset once the offset is crossed.
func TestReadReset(t *testing.T) {
	in := NewInjector(0, Config{})
	local, peer := net.Pipe()
	faulted := in.WrapFault(local, Fault{Kind: Reset, OnWrite: false, Offset: 4})
	go func() {
		_, _ = peer.Write([]byte("hello world"))
	}()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(faulted, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := faulted.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("Read err = %v, want ErrReset", err)
	}
}

// TestReadCorrupt: the scheduled bit flips on the read path.
func TestReadCorrupt(t *testing.T) {
	in := NewInjector(0, Config{})
	local, peer := net.Pipe()
	faulted := in.WrapFault(local, Fault{Kind: Corrupt, OnWrite: false, Offset: 2, Bit: 0})
	go func() {
		_, _ = peer.Write([]byte("abcdef"))
		_ = peer.Close()
	}()
	got, err := io.ReadAll(faulted)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("abcdef")
	want[2] ^= 1
	if string(got) != string(want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

// TestDelayOp: every faulted-direction operation pauses through the
// injector's Sleep seam for the scheduled duration.
func TestDelayOp(t *testing.T) {
	in := NewInjector(0, Config{})
	var mu sync.Mutex
	var pauses []time.Duration
	in.Sleep = func(d time.Duration) {
		mu.Lock()
		pauses = append(pauses, d)
		mu.Unlock()
	}
	local, peer := net.Pipe()
	faulted := in.WrapFault(local, Fault{Kind: DelayOp, OnWrite: true, Delay: 5 * time.Millisecond})
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := faulted.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	_ = faulted.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(pauses) != 3 {
		t.Fatalf("Sleep called %d times, want 3", len(pauses))
	}
	for _, d := range pauses {
		if d != 5*time.Millisecond {
			t.Fatalf("Sleep(%v), want 5ms", d)
		}
	}
}

// TestWrapNone: a clean schedule returns the connection untouched — no
// wrapper overhead on the unfaulted path.
func TestWrapNone(t *testing.T) {
	in := NewInjector(0, Config{})
	local, peer := net.Pipe()
	defer local.Close()
	defer peer.Close()
	if wrapped := in.WrapFault(local, Fault{}); wrapped != local {
		t.Fatal("None fault wrapped the connection")
	}
	if in := NewInjector(0, Config{FaultProb: 0}); in.Next().Kind != None {
		t.Fatal("FaultProb 0 drew a fault")
	}
}

// TestListenerScripting drives a real TCP listener: scripted accept
// errors surface in order before any connection, and scripted fault
// schedules apply to the next accepted connections.
func TestListenerScripting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(0, Config{}) // FaultProb 0: drawn schedules are clean
	fln := in.Listener(ln)
	defer fln.Close()
	errBoom := errors.New("boom")
	fln.FailAccepts(errBoom, errBoom)
	fln.ScriptFaults(Fault{Kind: Drop, OnWrite: false, Offset: 0})

	for i := 0; i < 2; i++ {
		if _, err := fln.Accept(); !errors.Is(err, errBoom) {
			t.Fatalf("scripted Accept %d err = %v, want errBoom", i, err)
		}
	}

	done := make(chan error, 1)
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, _ = c.Write([]byte("dropped"))
		done <- nil
	}()
	server, err := fln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	// The scripted read-drop at offset 0 means the server sees EOF
	// immediately, whatever the client sent.
	buf := make([]byte, 16)
	if n, err := server.Read(buf); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("scripted drop Read = (%d, %v), want (0, EOF)", n, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// With scripts exhausted and FaultProb 0, the next connection is
	// passthrough-clean.
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, _ = c.Write([]byte("clean"))
		done <- nil
	}()
	server, err = fln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(server, buf[:5]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:5]) != "clean" {
		t.Fatalf("clean conn read %q", buf[:5])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := in.Faulted(); got != 0 {
		t.Fatalf("Faulted() = %d after scripted-only faults, want 0", got)
	}
}
