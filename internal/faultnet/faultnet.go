// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seed-driven fault injection, the harness behind the collection
// plane's chaos tests. Real deployments lose statistics to the export
// path, not to sampling ("Revisiting the Issues On Netflow Sample and
// Export Performance"): links drop responses mid-frame, reset under
// load, and corrupt headers. faultnet reproduces those failures on
// loopback sockets, and — because every draw flows through one seeded
// dist.RNG and every pause through an injectable Sleep seam — a fault
// schedule is a pure function of (seed, wrap order), so any chaos run
// replays exactly.
//
// Every fault is engineered to fail fast rather than stall: a faulted
// connection always ends in a closed transport, so the peer observes
// EOF or a reset promptly and soak tests never wait out real timeouts.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"netsample/internal/dist"
)

// Kind enumerates the fault applied to one wrapped connection.
type Kind uint8

const (
	// None passes traffic through untouched.
	None Kind = iota
	// Drop silently discards all bytes in the faulted direction after
	// Offset bytes have passed, then closes the transport: the sender
	// believes its write succeeded while the receiver sees a truncated
	// stream — the lost-response failure mode that motivates the
	// ack-based poll cycle.
	Drop
	// Reset hard-closes the transport once Offset bytes have passed;
	// the operation in flight fails, modeling a mid-frame RST.
	Reset
	// Partial forwards only the prefix of the write that crosses
	// Offset, closes the transport, and reports a short write: unlike
	// Drop, the sender knows this frame failed.
	Partial
	// Corrupt flips one bit of the byte at stream position Offset in
	// the faulted direction and forwards everything else untouched.
	Corrupt
	// DelayOp pauses (through the injector's Sleep seam) before every
	// operation in the faulted direction.
	DelayOp

	numKinds = 6
)

// String names the fault kind for test failure messages.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Partial:
		return "partial"
	case Corrupt:
		return "corrupt"
	case DelayOp:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrReset is the error a Reset fault returns for the operation that
// trips it.
var ErrReset = errors.New("faultnet: connection reset by fault schedule")

// Fault is one connection's deterministic fault schedule.
type Fault struct {
	Kind    Kind
	OnWrite bool          // faulted direction: write path or read path
	Offset  int           // byte offset at which Drop/Reset/Partial trip, or the corrupted byte
	Bit     uint8         // bit flipped by Corrupt
	Delay   time.Duration // pause per operation for DelayOp
}

// Config bounds the faults an Injector draws.
type Config struct {
	// FaultProb is the probability in [0, 1] that a wrapped connection
	// draws a fault at all.
	FaultProb float64

	// Budget caps how many connections fault in total; once spent,
	// every further connection is clean. Zero or negative means
	// unlimited. A budget below a collector's retry count guarantees
	// eventual success, which lets a chaos soak assert conservation
	// rather than mere availability.
	Budget int

	// MaxOffset bounds the drawn byte offsets for Drop/Reset/Partial
	// (default 64).
	MaxOffset int

	// CorruptWindow bounds where Corrupt may flip a bit (default 4, the
	// magic/version/type prefix of a collect frame). Corrupting a
	// length field would stall the peer waiting for bytes that never
	// arrive rather than corrupt data — that failure mode belongs to
	// Drop, and the frame checksum covers the rest.
	CorruptWindow int

	// MaxDelay bounds drawn DelayOp pauses (default 1 ms).
	MaxDelay time.Duration
}

// Injector hands out deterministically faulted connections. All
// randomness flows through one seeded dist.RNG guarded by a mutex.
type Injector struct {
	// Sleep is the seam DelayOp pauses go through; nil means
	// time.Sleep. Tests inject a no-op so soaks run at full speed.
	Sleep func(time.Duration)

	mu      sync.Mutex
	rng     *dist.RNG
	cfg     Config
	faulted int
	wrapped int
}

// NewInjector returns an injector whose fault schedules are fully
// determined by seed and the order connections are wrapped in.
func NewInjector(seed uint64, cfg Config) *Injector {
	if cfg.MaxOffset <= 0 {
		cfg.MaxOffset = 64
	}
	if cfg.CorruptWindow <= 0 {
		cfg.CorruptWindow = 4
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	return &Injector{rng: dist.NewRNG(seed), cfg: cfg}
}

// Faulted reports how many wrapped connections drew a fault.
func (in *Injector) Faulted() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faulted
}

// Wrapped reports how many connections have been wrapped in total.
func (in *Injector) Wrapped() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.wrapped
}

// Next draws the fault schedule for the next wrapped connection. It is
// exported so tests can replay a schedule without opening sockets.
func (in *Injector) Next() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.wrapped++
	if in.cfg.FaultProb <= 0 || (in.cfg.Budget > 0 && in.faulted >= in.cfg.Budget) {
		return Fault{}
	}
	if in.rng.Float64() >= in.cfg.FaultProb {
		return Fault{}
	}
	in.faulted++
	f := Fault{
		Kind:    Kind(1 + in.rng.IntN(numKinds-1)),
		OnWrite: in.rng.Float64() < 0.5,
		Offset:  in.rng.IntN(in.cfg.MaxOffset),
		Bit:     uint8(in.rng.IntN(8)),
		Delay:   time.Duration(1 + in.rng.Int64N(int64(in.cfg.MaxDelay))),
	}
	if f.Kind == Corrupt {
		f.Offset = in.rng.IntN(in.cfg.CorruptWindow)
	}
	if f.Kind == Partial {
		f.OnWrite = true // a partial write only exists on the write path
	}
	return f
}

// Wrap returns c with the next drawn fault schedule applied.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	return in.WrapFault(c, in.Next())
}

// WrapFault applies an explicit fault schedule, for tests that need one
// specific failure rather than a drawn one.
func (in *Injector) WrapFault(c net.Conn, f Fault) net.Conn {
	if f.Kind == None {
		return c
	}
	return &conn{Conn: c, fault: f, sleep: in.sleep}
}

// sleep pauses through the injectable seam.
func (in *Injector) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if in.Sleep != nil {
		in.Sleep(d)
		return
	}
	time.Sleep(d)
}

// conn applies one Fault to an underlying net.Conn. The fault state is
// mutex-guarded so a server reading and writing from different
// goroutines stays race-free.
type conn struct {
	net.Conn
	fault Fault
	sleep func(time.Duration)

	mu       sync.Mutex
	rpos     int
	wpos     int
	tripped  bool // Reset/Partial fired: ops now fail
	dropping bool // Drop fired: writes claim success, reads report EOF
}

func (c *conn) Write(p []byte) (int, error) {
	f := c.fault
	if !f.OnWrite {
		return c.Conn.Write(p)
	}
	switch f.Kind {
	case DelayOp:
		c.sleep(f.Delay)
		return c.Conn.Write(p)
	case Corrupt:
		return c.writeCorrupt(p)
	case Drop:
		return c.writeDrop(p)
	case Partial:
		return c.writePartial(p)
	case Reset:
		return c.writeReset(p)
	}
	return c.Conn.Write(p)
}

func (c *conn) Read(p []byte) (int, error) {
	f := c.fault
	if f.OnWrite {
		return c.Conn.Read(p)
	}
	switch f.Kind {
	case DelayOp:
		c.sleep(f.Delay)
		return c.Conn.Read(p)
	case Corrupt:
		return c.readCorrupt(p)
	case Drop:
		return c.readDrop(p)
	case Reset:
		return c.readReset(p)
	}
	return c.Conn.Read(p)
}

// writeDrop forwards bytes until the fault offset, then claims success
// while discarding the rest and closing the transport: the writer sees
// nothing wrong, the peer sees a truncated stream and then EOF.
func (c *conn) writeDrop(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropping {
		return len(p), nil
	}
	keep := c.fault.Offset - c.wpos
	c.wpos += len(p)
	if keep >= len(p) {
		return c.Conn.Write(p) //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	}
	c.dropping = true
	if keep > 0 {
		if n, err := c.Conn.Write(p[:keep]); err != nil { //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
			return n, err
		}
	}
	_ = c.Conn.Close() //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	return len(p), nil
}

// writePartial forwards the prefix of the write that crosses the fault
// offset, closes the transport, and reports a short write.
func (c *conn) writePartial(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return 0, net.ErrClosed
	}
	keep := c.fault.Offset - c.wpos
	c.wpos += len(p)
	if keep >= len(p) {
		return c.Conn.Write(p) //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	}
	c.tripped = true
	n := 0
	if keep > 0 {
		var err error
		if n, err = c.Conn.Write(p[:keep]); err != nil { //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
			return n, err
		}
	}
	_ = c.Conn.Close() //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	return n, io.ErrShortWrite
}

// writeReset forwards bytes until the fault offset, then hard-closes
// and fails the operation in flight.
func (c *conn) writeReset(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return 0, ErrReset
	}
	keep := c.fault.Offset - c.wpos
	c.wpos += len(p)
	if keep >= len(p) {
		return c.Conn.Write(p) //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	}
	c.tripped = true
	n := 0
	if keep > 0 {
		var err error
		if n, err = c.Conn.Write(p[:keep]); err != nil { //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
			return n, err
		}
	}
	_ = c.Conn.Close() //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	return n, ErrReset
}

// writeCorrupt forwards the write, flipping the scheduled bit if its
// byte falls inside this operation. The caller's buffer is never
// mutated.
func (c *conn) writeCorrupt(p []byte) (int, error) {
	c.mu.Lock()
	start := c.wpos
	c.wpos += len(p)
	c.mu.Unlock()
	t := c.fault.Offset
	if t < start || t >= start+len(p) {
		return c.Conn.Write(p)
	}
	q := make([]byte, len(p))
	copy(q, p)
	q[t-start] ^= 1 << c.fault.Bit
	return c.Conn.Write(q)
}

// readDrop serves bytes until the fault offset, then closes the
// transport and reports EOF: the remaining inbound data was lost before
// the application saw it.
func (c *conn) readDrop(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropping {
		return 0, io.EOF
	}
	allow := c.fault.Offset - c.rpos
	if allow <= 0 {
		c.dropping = true
		_ = c.Conn.Close() //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
		return 0, io.EOF
	}
	if allow < len(p) {
		p = p[:allow]
	}
	n, err := c.Conn.Read(p) //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	c.rpos += n
	return n, err
}

// readReset serves bytes until the fault offset, then hard-closes and
// fails the read in flight.
func (c *conn) readReset(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return 0, ErrReset
	}
	allow := c.fault.Offset - c.rpos
	if allow <= 0 {
		c.tripped = true
		_ = c.Conn.Close() //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
		return 0, ErrReset
	}
	if allow < len(p) {
		p = p[:allow]
	}
	n, err := c.Conn.Read(p) //nslint:allow mutexhold harness conn serves one sequential exchange; fault accounting must stay ordered with its I/O
	c.rpos += n
	return n, err
}

// readCorrupt forwards the read, flipping the scheduled bit if its byte
// falls inside this operation.
func (c *conn) readCorrupt(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.mu.Lock()
		start := c.rpos
		c.rpos += n
		c.mu.Unlock()
		t := c.fault.Offset
		if t >= start && t < start+n {
			p[t-start] ^= 1 << c.fault.Bit
		}
	}
	return n, err
}

// Listener wraps a net.Listener: accepted connections carry the
// injector's drawn fault schedules, and Accept itself can be scripted
// to fail, which is how an agent's accept-retry path is exercised.
type Listener struct {
	net.Listener
	inj *Injector

	mu     sync.Mutex
	errs   []error
	faults []Fault
}

// Listener wraps ln with this injector's fault schedules.
func (in *Injector) Listener(ln net.Listener) *Listener {
	return &Listener{Listener: ln, inj: in}
}

// FailAccepts queues errors that the next Accept calls return, in
// order, before any connection is accepted.
func (l *Listener) FailAccepts(errs ...error) {
	l.mu.Lock()
	l.errs = append(l.errs, errs...)
	l.mu.Unlock()
}

// ScriptFaults queues explicit fault schedules applied to the next
// accepted connections, ahead of the injector's drawn ones.
func (l *Listener) ScriptFaults(faults ...Fault) {
	l.mu.Lock()
	l.faults = append(l.faults, faults...)
	l.mu.Unlock()
}

// Accept returns the next scripted error, or the next connection
// wrapped in its fault schedule.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if len(l.errs) > 0 {
		err := l.errs[0]
		l.errs = l.errs[1:]
		l.mu.Unlock()
		return nil, err
	}
	l.mu.Unlock()
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if len(l.faults) > 0 {
		f := l.faults[0]
		l.faults = l.faults[1:]
		l.mu.Unlock()
		return l.inj.WrapFault(c, f), nil
	}
	l.mu.Unlock()
	return l.inj.Wrap(c), nil
}
