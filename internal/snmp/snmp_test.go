package snmp

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netsample/internal/dist"
)

func startAgent(t *testing.T) (*Agent, string) {
	t.Helper()
	a := NewAgent()
	addr, err := a.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a, addr.String()
}

func TestGetSingleCounter(t *testing.T) {
	a, addr := startAgent(t)
	var pkts atomic.Uint64
	pkts.Store(12345)
	if err := a.Register("if.1.inPkts", pkts.Load); err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	vals, err := m.Get(addr, "if.1.inPkts")
	if err != nil {
		t.Fatal(err)
	}
	if vals["if.1.inPkts"] != 12345 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestGetReadsLiveValues(t *testing.T) {
	a, addr := startAgent(t)
	var pkts atomic.Uint64
	if err := a.Register("c", pkts.Load); err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	v1, err := m.Get(addr, "c")
	if err != nil {
		t.Fatal(err)
	}
	pkts.Add(100)
	v2, err := m.Get(addr, "c")
	if err != nil {
		t.Fatal(err)
	}
	if v2["c"]-v1["c"] != 100 {
		t.Fatalf("values not live: %v then %v", v1, v2)
	}
}

func TestGetMultipleCounters(t *testing.T) {
	a, addr := startAgent(t)
	for name, v := range map[string]uint64{"a": 1, "b": 2, "c": 3} {
		v := v
		if err := a.Register(name, func() uint64 { return v }); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager()
	vals, err := m.Get(addr, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals["a"] != 1 || vals["b"] != 2 || vals["c"] != 3 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestGetUnknownObject(t *testing.T) {
	a, addr := startAgent(t)
	if err := a.Register("known", func() uint64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	if _, err := m.Get(addr, "unknown"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unknown object: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	a := NewAgent()
	if err := a.Register("", func() uint64 { return 0 }); err == nil {
		t.Error("empty name accepted")
	}
	if err := a.Register("x", nil); err == nil {
		t.Error("nil getter accepted")
	}
}

func TestGetValidation(t *testing.T) {
	m := NewManager()
	if _, err := m.Get("127.0.0.1:1"); err == nil {
		t.Error("no names accepted")
	}
	if _, err := m.Get("127.0.0.1:1", ""); err == nil {
		t.Error("empty name accepted")
	}
}

func TestRetrySurvivesDatagramLoss(t *testing.T) {
	a := NewAgent()
	a.DropEvery = 2 // drop every second request; set before Serve
	laddr, err := a.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	addr := laddr.String()
	if err := a.Register("c", func() uint64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	m.Timeout = 150 * time.Millisecond
	m.Retries = 3
	// Several gets in a row; each survives a 50% request loss via retry.
	for i := 0; i < 6; i++ {
		vals, err := m.Get(addr, "c")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if vals["c"] != 7 {
			t.Fatalf("get %d: %v", i, vals)
		}
	}
}

func TestTimeoutOnDeadAgent(t *testing.T) {
	// Reserve a port with no agent behind it.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	m := NewManager()
	m.Timeout = 100 * time.Millisecond
	m.Retries = 1
	start := time.Now()
	if _, err := m.Get(addr, "c"); err == nil {
		t.Fatal("dead agent answered")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestAgentIgnoresGarbage(t *testing.T) {
	a, addr := startAgent(t)
	if err := a.Register("c", func() uint64 { return 9 }); err != nil {
		t.Fatal(err)
	}
	// Throw garbage at the agent first.
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{
		{}, {1}, []byte("GET /"), make([]byte, 4096),
	} {
		_, _ = conn.Write(payload)
	}
	conn.Close()
	// The agent must still answer well-formed requests.
	m := NewManager()
	vals, err := m.Get(addr, "c")
	if err != nil {
		t.Fatal(err)
	}
	if vals["c"] != 9 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestConcurrentManagers(t *testing.T) {
	a, addr := startAgent(t)
	var counter atomic.Uint64
	if err := a.Register("c", counter.Load); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := NewManager()
			for j := 0; j < 20; j++ {
				if _, err := m.Get(addr, "c"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestParseNamesErrors(t *testing.T) {
	cases := [][]byte{
		{},                // missing count
		{0},               // zero count
		{100},             // count with no names
		{1, 0},            // zero-length name
		{1, 5, 'a'},       // truncated name
		{1, 1, 'a', 0xff}, // trailing bytes
	}
	for i, c := range cases {
		if _, err := parseNames(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseResponseErrors(t *testing.T) {
	if _, _, err := parseResponse([]byte{1, 2, 3}, 1); err == nil {
		t.Error("short response accepted")
	}
	// Mismatched request ID is not an error, just no match.
	resp := respHeader(99, typeValues)
	resp = append(resp, 0)
	if _, match, err := parseResponse(resp, 1); err != nil || match {
		t.Errorf("stray response: match=%v err=%v", match, err)
	}
	// Unknown type.
	bad := respHeader(1, 42)
	if _, _, err := parseResponse(bad, 1); err == nil {
		t.Error("unknown type accepted")
	}
}

// deadDrop starts an agent that drops every request, so Get exhausts
// all retries.
func deadDrop(t *testing.T) string {
	t.Helper()
	a := NewAgent()
	a.DropEvery = 1 // every request is dropped
	laddr, err := a.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return laddr.String()
}

func TestRetryBackoffJitterDeterministic(t *testing.T) {
	addr := deadDrop(t)
	run := func(seed uint64) []time.Duration {
		var slept []time.Duration
		m := NewManager()
		m.Timeout = 20 * time.Millisecond
		m.Retries = 3
		m.Backoff = 10 * time.Millisecond
		m.Jitter = dist.NewRNG(seed)
		m.Sleep = func(d time.Duration) { slept = append(slept, d) }
		if _, err := m.Get(addr, "c"); err == nil {
			t.Fatal("drop-everything agent answered")
		}
		return slept
	}
	a := run(42)
	if len(a) != 3 {
		t.Fatalf("want one pause per retry (3), got %d", len(a))
	}
	for i, d := range a {
		if d < 10*time.Millisecond || d >= 20*time.Millisecond {
			t.Fatalf("pause %d = %v outside [Backoff, 2*Backoff)", i, d)
		}
	}
	b := run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pause %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

func TestRetryWithoutBackoffDoesNotSleep(t *testing.T) {
	addr := deadDrop(t)
	m := NewManager()
	m.Timeout = 20 * time.Millisecond
	m.Retries = 2
	m.Sleep = func(d time.Duration) { t.Fatalf("unexpected pause %v with zero Backoff", d) }
	if _, err := m.Get(addr, "c"); err == nil {
		t.Fatal("drop-everything agent answered")
	}
}
