package snmp

import "testing"

// FuzzAgentHandle: arbitrary datagrams must never panic the agent.
func FuzzAgentHandle(f *testing.F) {
	a := NewAgent()
	if err := a.Register("c", func() uint64 { return 1 }); err != nil {
		f.Fatal(err)
	}
	req := respHeader(7, typeGet)
	req = append(req, 1, 1, 'c')
	f.Add(req)
	f.Add([]byte{})
	f.Add([]byte{0x47, 0x53, 1, 1, 0, 0, 0, 0, 1, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = a.handle(data)
	})
}

// FuzzParseResponse: arbitrary datagrams must never panic the manager's
// response parser.
func FuzzParseResponse(f *testing.F) {
	resp := respHeader(7, typeValues)
	resp = append(resp, 1, 1, 'c', 1, 0, 0, 0, 0, 0, 0, 0)
	f.Add(resp, uint32(7))
	f.Add([]byte{}, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, id uint32) {
		_, _, _ = parseResponse(data, id)
	})
}
