// Package snmp implements the simple interface-counter query protocol
// that provides the paper's ground truth: "the principal sources of
// information for the T3 NSFNET backbone come from programs using the
// Simple Network Management Protocol for simple interface statistics".
// SNMP counters are incremented in the mainstream of packet forwarding
// and are therefore exact even when the statistics categorization falls
// behind — the property that exposed Figure 1's discrepancy.
//
// The wire protocol is a deliberately simplified SNMP work-alike over
// UDP (no ASN.1): fixed little-endian framing, string object names in
// place of OIDs, GET of one or more counters per request, request-ID
// matching, and manager-side retry with timeout to survive UDP loss.
//
//	request:  magic uint16 "SG", version uint8 = 1, type uint8 = 1 (get),
//	          reqID uint32, count uint8, count × (uint8 len + name bytes)
//	response: same header with type 2 (values) or 3 (error),
//	          values: count uint8, count × (uint8 len + name, uint64 value)
//	          error:  uint8 len + message bytes
package snmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netsample/internal/dist"
)

// Protocol constants.
const (
	magic       = 0x5347 // "SG"
	version     = 1
	typeGet     = 1
	typeValues  = 2
	typeError   = 3
	headerLen   = 8
	maxNameLen  = 255
	maxCounters = 64
	maxDatagram = 8192
)

// ErrProto reports a malformed datagram.
var ErrProto = errors.New("snmp: malformed datagram")

// ErrNoSuchObject reports a GET of an unregistered counter.
var ErrNoSuchObject = errors.New("snmp: no such object")

// Agent serves counter GETs over UDP. Counters are registered as getter
// functions so values are read at query time, like real SNMP
// instrumentation of live forwarding counters.
type Agent struct {
	mu       sync.RWMutex
	counters map[string]func() uint64

	conn   *net.UDPConn
	wg     sync.WaitGroup
	closed chan struct{}

	// DropEvery simulates UDP loss for tests: every n-th request is
	// silently discarded (0 disables). It must be set before Serve.
	DropEvery int
	reqCount  int
}

// NewAgent returns an agent with no counters registered.
func NewAgent() *Agent {
	return &Agent{counters: make(map[string]func() uint64), closed: make(chan struct{})}
}

// Register exposes a counter under the given name. Re-registering a
// name replaces its getter.
func (a *Agent) Register(name string, get func() uint64) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("%w: bad counter name", ErrProto)
	}
	if get == nil {
		return errors.New("snmp: nil getter")
	}
	a.mu.Lock()
	a.counters[name] = get
	a.mu.Unlock()
	return nil
}

// Serve binds the agent to a UDP address ("127.0.0.1:0" for tests) and
// answers requests until Close.
func (a *Agent) Serve(addr string) (net.Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	a.conn = conn
	a.wg.Add(1)
	go a.serveLoop()
	return conn.LocalAddr(), nil
}

func (a *Agent) serveLoop() {
	defer a.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, peer, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		a.reqCount++
		if a.DropEvery > 0 && a.reqCount%a.DropEvery == 0 {
			continue // simulated datagram loss
		}
		resp := a.handle(buf[:n])
		if resp != nil {
			_, _ = a.conn.WriteToUDP(resp, peer)
		}
	}
}

// handle parses one request and builds the response. Malformed
// datagrams are dropped silently, as a real agent would.
func (a *Agent) handle(req []byte) []byte {
	if len(req) < headerLen {
		return nil
	}
	if binary.LittleEndian.Uint16(req[0:]) != magic || req[2] != version || req[3] != typeGet {
		return nil
	}
	reqID := binary.LittleEndian.Uint32(req[4:])
	names, err := parseNames(req[headerLen:])
	if err != nil {
		return errResponse(reqID, err.Error())
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := respHeader(reqID, typeValues)
	out = append(out, byte(len(names)))
	for _, name := range names {
		get, ok := a.counters[name]
		if !ok {
			return errResponse(reqID, fmt.Sprintf("no such object: %s", name))
		}
		out = append(out, byte(len(name)))
		out = append(out, name...)
		out = binary.LittleEndian.AppendUint64(out, get())
	}
	return out
}

func respHeader(reqID uint32, msgType byte) []byte {
	out := make([]byte, headerLen)
	binary.LittleEndian.PutUint16(out[0:], magic)
	out[2] = version
	out[3] = msgType
	binary.LittleEndian.PutUint32(out[4:], reqID)
	return out
}

func errResponse(reqID uint32, msg string) []byte {
	if len(msg) > maxNameLen {
		msg = msg[:maxNameLen]
	}
	out := respHeader(reqID, typeError)
	out = append(out, byte(len(msg)))
	return append(out, msg...)
}

// parseNames decodes the request's counter-name list.
func parseNames(b []byte) ([]string, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: missing count", ErrProto)
	}
	count := int(b[0])
	if count == 0 || count > maxCounters {
		return nil, fmt.Errorf("%w: bad counter count %d", ErrProto, count)
	}
	names := make([]string, 0, count)
	off := 1
	for i := 0; i < count; i++ {
		if off >= len(b) {
			return nil, fmt.Errorf("%w: truncated name list", ErrProto)
		}
		n := int(b[off])
		off++
		if n == 0 || off+n > len(b) {
			return nil, fmt.Errorf("%w: bad name length", ErrProto)
		}
		names = append(names, string(b[off:off+n]))
		off += n
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrProto)
	}
	return names, nil
}

// Close stops the agent.
func (a *Agent) Close() error {
	close(a.closed)
	var err error
	if a.conn != nil {
		err = a.conn.Close()
	}
	a.wg.Wait()
	return err
}

// Manager queries agents. It retries over UDP loss and matches
// responses to requests by ID, ignoring strays.
type Manager struct {
	// Timeout per attempt; Retries additional attempts after the first.
	Timeout time.Duration
	Retries int

	// Backoff is the base pause before each retry attempt. When Jitter
	// is set, a uniform share of Backoff in [0, Backoff) is added so a
	// fleet of managers polling one agent does not retry in lockstep.
	// Zero keeps the historical retry-immediately behavior.
	Backoff time.Duration

	// Jitter supplies the randomness for retry spacing. Callers pass a
	// seeded *dist.RNG so retry schedules are reproducible run-to-run;
	// the manager serializes access to it under its mutex. Nil disables
	// jitter.
	Jitter *dist.RNG

	// Clock and Sleep are injectable seams for the retry loop; nil
	// means real time. Tests pin them to make timeout paths exact.
	Clock func() time.Time
	Sleep func(time.Duration)

	mu    sync.Mutex
	reqID uint32
}

// NewManager returns a manager with sensible defaults for loopback use.
func NewManager() *Manager {
	return &Manager{Timeout: 500 * time.Millisecond, Retries: 3}
}

// now reads the manager's clock, the package's sanctioned wall-clock
// seam.
func (m *Manager) now() time.Time {
	if m.Clock != nil {
		return m.Clock()
	}
	return time.Now() //nslint:allow noclock default of the injectable Clock seam
}

// pause sleeps for d through the injectable seam.
func (m *Manager) pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if m.Sleep != nil {
		m.Sleep(d)
		return
	}
	time.Sleep(d)
}

// retryDelay computes the pause before one retry: Backoff plus uniform
// jitter drawn from the manager's seeded RNG.
func (m *Manager) retryDelay() time.Duration {
	if m.Backoff <= 0 {
		return 0
	}
	d := m.Backoff
	m.mu.Lock()
	if m.Jitter != nil {
		d += time.Duration(m.Jitter.Int64N(int64(m.Backoff)))
	}
	m.mu.Unlock()
	return d
}

// Get fetches the named counters from the agent at addr. The result maps
// each requested name to its value.
func (m *Manager) Get(addr string, names ...string) (map[string]uint64, error) {
	if len(names) == 0 || len(names) > maxCounters {
		return nil, fmt.Errorf("%w: bad counter count %d", ErrProto, len(names))
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	m.mu.Lock()
	m.reqID++
	reqID := m.reqID
	m.mu.Unlock()

	req := respHeader(reqID, typeGet)
	req[3] = typeGet
	req = append(req, byte(len(names)))
	for _, name := range names {
		if name == "" || len(name) > maxNameLen {
			return nil, fmt.Errorf("%w: bad counter name %q", ErrProto, name)
		}
		req = append(req, byte(len(name)))
		req = append(req, name...)
	}

	buf := make([]byte, maxDatagram)
	var lastErr error
	for attempt := 0; attempt <= m.Retries; attempt++ {
		if attempt > 0 {
			m.pause(m.retryDelay())
		}
		if _, err := conn.Write(req); err != nil {
			return nil, err
		}
		deadline := m.now().Add(m.Timeout)
		for {
			if err := conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := conn.Read(buf)
			if err != nil {
				lastErr = err
				break // timeout: retry
			}
			vals, match, err := parseResponse(buf[:n], reqID)
			if err != nil {
				return nil, err
			}
			if !match {
				continue // stray or stale response: keep listening
			}
			return vals, nil
		}
	}
	return nil, fmt.Errorf("snmp: %s unreachable after %d attempts: %w",
		addr, m.Retries+1, lastErr)
}

// parseResponse decodes a response datagram. match is false when the
// response belongs to another request.
func parseResponse(b []byte, wantID uint32) (map[string]uint64, bool, error) {
	if len(b) < headerLen {
		return nil, false, fmt.Errorf("%w: short response", ErrProto)
	}
	if binary.LittleEndian.Uint16(b[0:]) != magic || b[2] != version {
		return nil, false, fmt.Errorf("%w: bad response header", ErrProto)
	}
	if binary.LittleEndian.Uint32(b[4:]) != wantID {
		return nil, false, nil
	}
	switch b[3] {
	case typeError:
		body := b[headerLen:]
		if len(body) < 1 || 1+int(body[0]) > len(body) {
			return nil, false, fmt.Errorf("%w: bad error body", ErrProto)
		}
		msg := string(body[1 : 1+int(body[0])])
		if len(msg) >= len("no such object") && msg[:len("no such object")] == "no such object" {
			return nil, false, fmt.Errorf("%w: %s", ErrNoSuchObject, msg)
		}
		return nil, false, fmt.Errorf("snmp: agent error: %s", msg)
	case typeValues:
		body := b[headerLen:]
		if len(body) < 1 {
			return nil, false, fmt.Errorf("%w: missing value count", ErrProto)
		}
		count := int(body[0])
		off := 1
		vals := make(map[string]uint64, count)
		for i := 0; i < count; i++ {
			if off >= len(body) {
				return nil, false, fmt.Errorf("%w: truncated values", ErrProto)
			}
			n := int(body[off])
			off++
			if n == 0 || off+n+8 > len(body) {
				return nil, false, fmt.Errorf("%w: bad value entry", ErrProto)
			}
			name := string(body[off : off+n])
			off += n
			vals[name] = binary.LittleEndian.Uint64(body[off:])
			off += 8
		}
		if off != len(body) {
			return nil, false, fmt.Errorf("%w: trailing bytes", ErrProto)
		}
		return vals, true, nil
	default:
		return nil, false, fmt.Errorf("%w: unknown response type %d", ErrProto, b[3])
	}
}
