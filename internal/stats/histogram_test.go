package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"netsample/internal/dist"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("nil edges should fail")
	}
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Error("single edge should fail")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing edges should fail")
	}
	if _, err := NewHistogram([]float64{1, math.NaN(), 3}); err == nil {
		t.Error("NaN edge should fail")
	}
	if _, err := NewHistogram([]float64{3, 2, 1}); err == nil {
		t.Error("decreasing edges should fail")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{-5, 0, 5, 9.999, 10, 15, 29.999, 30, 100})
	if h.Underflow != 1 {
		t.Errorf("underflow = %d", h.Underflow)
	}
	if h.Overflow != 2 { // 30 and 100: 30 is at the top edge → overflow
		t.Errorf("overflow = %d", h.Overflow)
	}
	want := []int64{3, 2, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 9 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramEdgeValueGoesToRightBin(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 10, 20})
	h.Add(10) // exactly on interior edge: belongs to bin [10,20)
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Fatalf("edge value misbinned: %v", h.Counts)
	}
}

func TestHistogramConservesTotalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dist.NewRNG(uint64(seed))
		h, err := NewHistogram([]float64{-1, 0, 0.5, 2})
		if err != nil {
			return false
		}
		n := r.IntN(500)
		for i := 0; i < n; i++ {
			h.Add(r.NormFloat64())
		}
		return h.Total() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramProportions(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1, 2})
	if h.Proportions() != nil {
		t.Error("empty histogram proportions should be nil")
	}
	h.AddAll([]float64{0.5, 0.6, 1.5, -3}) // one underflow excluded
	p := h.Proportions()
	if !almost(p[0], 2.0/3, 1e-12) || !almost(p[1], 1.0/3, 1e-12) {
		t.Errorf("proportions = %v", p)
	}
}

func TestHistogramReset(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1})
	h.AddAll([]float64{-1, 0.5, 2})
	h.Reset()
	if h.Total() != 0 || h.Underflow != 0 || h.Overflow != 0 {
		t.Error("reset did not clear")
	}
}

func TestHistogramString(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 41, 181}) // paper's size bins lower part
	h.AddAll([]float64{40, 40, 552})
	s := h.String()
	if !strings.Contains(s, "[0, 41): 2") {
		t.Errorf("unexpected render:\n%s", s)
	}
	if !strings.Contains(s, "overflow: 1") {
		t.Errorf("overflow missing:\n%s", s)
	}
}

func TestFixedWidthEdges(t *testing.T) {
	edges, err := FixedWidthEdges(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 25, 50, 75, 100}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v", edges)
		}
	}
	if _, err := FixedWidthEdges(5, 5, 3); err == nil {
		t.Error("degenerate range should fail")
	}
	if _, err := FixedWidthEdges(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := make([]float64, 1000)
	r := dist.NewRNG(41)
	for i := range xs {
		xs[i] = r.Float64() * 50
	}
	edges, err := QuantileEdges(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 6 {
		t.Fatalf("edges = %v", edges)
	}
	h, err := NewHistogram(edges)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll(xs)
	if h.Underflow != 0 || h.Overflow != 0 {
		t.Fatalf("quantile edges leaked data: under=%d over=%d", h.Underflow, h.Overflow)
	}
	// Roughly balanced bins.
	for i, c := range h.Counts {
		if c < 150 || c > 250 {
			t.Errorf("bin %d unbalanced: %d", i, c)
		}
	}
}

func TestQuantileEdgesDiscreteData(t *testing.T) {
	// Heavily tied data (constant) must still produce valid edges.
	xs := []float64{7, 7, 7, 7, 7}
	edges, err := QuantileEdges(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHistogram(edges)
	if err != nil {
		t.Fatalf("edges invalid: %v (%v)", err, edges)
	}
	h.AddAll(xs)
	if h.Underflow != 0 || h.Overflow != 0 {
		t.Fatalf("tied data leaked: %+v edges=%v", h, edges)
	}
}

func TestQuantileEdgesErrors(t *testing.T) {
	if _, err := QuantileEdges(nil, 3); err == nil {
		t.Error("empty should fail")
	}
	if _, err := QuantileEdges([]float64{1}, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestBoxplotBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b, err := NewBoxplot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Median != 5 || b.Q1 != 3 || b.Q3 != 7 {
		t.Fatalf("quartiles wrong: %+v", b)
	}
	if b.LowWhisker != 1 || b.HighWhisker != 9 {
		t.Fatalf("whiskers wrong: %+v", b)
	}
	if len(b.Outliers) != 0 {
		t.Fatalf("unexpected outliers: %v", b.Outliers)
	}
}

func TestBoxplotOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b, err := NewBoxplot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v", b.Outliers)
	}
	if b.HighWhisker == 100 {
		t.Fatal("whisker should not reach outlier")
	}
}

func TestBoxplotEmpty(t *testing.T) {
	if _, err := NewBoxplot(nil); err != ErrEmpty {
		t.Fatal("empty boxplot should fail")
	}
}

func TestBoxplotSingle(t *testing.T) {
	b, err := NewBoxplot([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Median != 5 || b.LowWhisker != 5 || b.HighWhisker != 5 || b.Mean != 5 {
		t.Fatalf("single boxplot: %+v", b)
	}
}
