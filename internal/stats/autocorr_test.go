package stats

import (
	"math"
	"testing"

	"netsample/internal/dist"
)

func TestAutocorrelationLagZero(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	ac, err := Autocorrelation(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ac[0]-1) > 1e-12 {
		t.Fatalf("r(0) = %v, want 1", ac[0])
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := dist.NewRNG(90)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	ac, err := Autocorrelation(xs, 1, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ac {
		if math.Abs(v) > 0.02 {
			t.Errorf("white-noise autocorrelation[%d] = %v", i, v)
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with rho = 0.8: r(1) ≈ 0.8, r(2) ≈ 0.64.
	r := dist.NewRNG(91)
	const rho = 0.8
	xs := make([]float64, 100000)
	x := 0.0
	for i := range xs {
		x = rho*x + r.NormFloat64()
		xs[i] = x
	}
	ac, err := Autocorrelation(xs, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ac[0]-0.8) > 0.02 {
		t.Errorf("r(1) = %v, want 0.8", ac[0])
	}
	if math.Abs(ac[1]-0.64) > 0.03 {
		t.Errorf("r(2) = %v, want 0.64", ac[1])
	}
}

func TestAutocorrelationAlternating(t *testing.T) {
	// Perfectly alternating series: r(1) ≈ -1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	ac, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ac[0] > -0.99 {
		t.Fatalf("r(1) = %v, want ≈ -1", ac[0])
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation(nil, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Autocorrelation([]float64{1}, 0); err == nil {
		t.Error("single element accepted")
	}
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Error("negative lag accepted")
	}
	if _, err := Autocorrelation([]float64{1, 2}, 2); err == nil {
		t.Error("lag >= n accepted")
	}
	if _, err := Autocorrelation([]float64{3, 3, 3}, 1); err == nil {
		t.Error("constant series accepted")
	}
}
