package stats

import "errors"

// IndexOfDispersion returns the index of dispersion for counts (IDC) of
// an event arrival sequence at a given counting-window size: the
// variance of the per-window event counts divided by their mean. A
// Poisson process has IDC = 1 at every timescale; bursty traffic shows
// IDC growing with the window — the structure that makes timer-driven
// sampling miss "bursty periods with many packets of relatively small
// interarrival times" (Section 7.2 of the paper).
//
// times are event timestamps in µs (ordered); windowUS is the counting
// window. At least two full windows are required.
func IndexOfDispersion(times []int64, windowUS int64) (float64, error) {
	if len(times) == 0 {
		return 0, ErrEmpty
	}
	if windowUS < 1 {
		return 0, errors.New("stats: window must be positive")
	}
	span := times[len(times)-1] - times[0]
	nWindows := span / windowUS
	if nWindows < 2 {
		return 0, errors.New("stats: need at least two full windows")
	}
	counts := make([]float64, nWindows)
	base := times[0]
	for _, t := range times {
		w := (t - base) / windowUS
		if w >= nWindows {
			break // partial final window excluded
		}
		counts[w]++
	}
	d, err := Describe(counts)
	if err != nil {
		return 0, err
	}
	if d.Mean == 0 {
		return 0, errors.New("stats: zero event rate")
	}
	return d.StdDev * d.StdDev / d.Mean, nil
}

// IDCProfile computes the IDC at each of the given window sizes,
// returning one value per window.
func IDCProfile(times []int64, windowsUS []int64) ([]float64, error) {
	out := make([]float64, len(windowsUS))
	for i, w := range windowsUS {
		v, err := IndexOfDispersion(times, w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
