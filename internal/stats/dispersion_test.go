package stats

import (
	"testing"

	"netsample/internal/dist"
)

func TestIDCPoissonIsOne(t *testing.T) {
	// A Poisson process has IDC ≈ 1 at every timescale.
	r := dist.NewRNG(100)
	var times []int64
	var tt float64
	for i := 0; i < 200000; i++ {
		tt += r.ExpFloat64() * 1000 // mean gap 1 ms
		times = append(times, int64(tt))
	}
	for _, w := range []int64{10_000, 100_000, 1_000_000} {
		idc, err := IndexOfDispersion(times, w)
		if err != nil {
			t.Fatal(err)
		}
		if idc < 0.9 || idc > 1.15 {
			t.Errorf("Poisson IDC at %dµs = %v, want ≈1", w, idc)
		}
	}
}

func TestIDCDeterministicBelowOne(t *testing.T) {
	// A perfectly periodic process is underdispersed: IDC ≈ 0.
	var times []int64
	for i := 0; i < 100000; i++ {
		times = append(times, int64(i)*1000)
	}
	idc, err := IndexOfDispersion(times, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if idc > 0.05 {
		t.Fatalf("periodic IDC = %v, want ≈0", idc)
	}
}

func TestIDCBurstyAboveOne(t *testing.T) {
	// On/off bursts: long silences between dense trains.
	r := dist.NewRNG(101)
	var times []int64
	tt := int64(0)
	for burst := 0; burst < 2000; burst++ {
		n := 5 + r.IntN(45)
		for i := 0; i < n; i++ {
			tt += int64(100 + r.IntN(400)) // dense: ~4 kpps
			times = append(times, tt)
		}
		tt += int64(50_000 + r.IntN(200_000)) // silence
	}
	idc, err := IndexOfDispersion(times, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if idc < 2 {
		t.Fatalf("bursty IDC = %v, want >> 1", idc)
	}
}

func TestIDCErrors(t *testing.T) {
	if _, err := IndexOfDispersion(nil, 100); err != ErrEmpty {
		t.Error("empty accepted")
	}
	if _, err := IndexOfDispersion([]int64{1, 2}, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := IndexOfDispersion([]int64{1, 2}, 1000); err == nil {
		t.Error("too-short span accepted")
	}
}

func TestIDCProfile(t *testing.T) {
	r := dist.NewRNG(102)
	var times []int64
	var tt float64
	for i := 0; i < 50000; i++ {
		tt += r.ExpFloat64() * 1000
		times = append(times, int64(tt))
	}
	prof, err := IDCProfile(times, []int64{10_000, 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 2 {
		t.Fatalf("profile = %v", prof)
	}
	if _, err := IDCProfile(times, []int64{0}); err == nil {
		t.Error("bad window accepted")
	}
}
