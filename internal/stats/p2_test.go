package stats

import (
	"math"
	"testing"

	"netsample/internal/dist"
)

func TestNewP2Validation(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewP2(q); err == nil {
			t.Errorf("q=%v accepted", q)
		}
	}
}

func TestP2Empty(t *testing.T) {
	p, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Quantile(); err != ErrEmpty {
		t.Fatal("empty estimator should fail")
	}
}

func TestP2SmallSampleExact(t *testing.T) {
	p, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{3, 1, 2} {
		p.Add(x)
	}
	got, err := p.Quantile()
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("small-sample median = %v", got)
	}
}

// p2VsExact runs the estimator over data and compares to the exact
// quantile, returning relative error against the data's spread.
func p2VsExact(t *testing.T, q float64, xs []float64) float64 {
	t.Helper()
	p, err := NewP2(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		p.Add(x)
	}
	if p.N() != len(xs) {
		t.Fatalf("N = %d", p.N())
	}
	got, err := p.Quantile()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Quantile(xs, q)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Quantile(xs, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Quantile(xs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if spread == lo {
		return 0
	}
	return math.Abs(got-exact) / (spread - lo)
}

func TestP2AccuracyUniform(t *testing.T) {
	r := dist.NewRNG(110)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.Float64() * 1000
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95} {
		if e := p2VsExact(t, q, xs); e > 0.01 {
			t.Errorf("uniform q=%v relative error %v", q, e)
		}
	}
}

func TestP2AccuracyExponential(t *testing.T) {
	r := dist.NewRNG(111)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 2358
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		if e := p2VsExact(t, q, xs); e > 0.02 {
			t.Errorf("exponential q=%v relative error %v", q, e)
		}
	}
}

func TestP2AccuracyBimodal(t *testing.T) {
	// The packet-size shape: spikes at 40 and 552.
	r := dist.NewRNG(112)
	xs := make([]float64, 100000)
	for i := range xs {
		if r.Float64() < 0.45 {
			xs[i] = 40 + r.Float64()*2
		} else {
			xs[i] = 552 + r.Float64()*2
		}
	}
	// The median sits in the 552 spike.
	p, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		p.Add(x)
	}
	got, err := p.Quantile()
	if err != nil {
		t.Fatal(err)
	}
	if got < 500 || got > 560 {
		t.Fatalf("bimodal median estimate = %v, want ≈552", got)
	}
}

func TestP2MonotoneInQ(t *testing.T) {
	r := dist.NewRNG(113)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.NormFloat64() * 100
	}
	var prev float64
	for i, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p, err := NewP2(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			p.Add(x)
		}
		got, err := p.Quantile()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && got <= prev {
			t.Fatalf("q=%v estimate %v not above previous %v", q, got, prev)
		}
		prev = got
	}
}
