// Package stats provides the descriptive-statistics substrate for the
// sampling study: moment summaries (mean, standard deviation, skewness,
// kurtosis), exact quantiles, five-number boxplot summaries, histograms
// over arbitrary edges, and per-second time-series aggregation of packet
// traces. These are the quantities the paper reports in Tables 2 and 3 and
// uses to build the boxplots of Figure 6.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested of an empty data set.
var ErrEmpty = errors.New("stats: empty data set")

// Summary holds the moment-based description of a data set: the fields the
// paper reports in Table 2 ("Mean", "StdDev.", "Skew", "Kurtosis") plus
// count, min and max. Kurtosis is the raw fourth standardized moment
// (normal = 3), matching the paper's Table 2 convention (its per-second
// packet-size row reports kurtosis 2.9 ≈ normal).
type Summary struct {
	N        int
	Min      float64
	Max      float64
	Mean     float64
	StdDev   float64 // population standard deviation (divide by N)
	Skewness float64
	Kurtosis float64
}

// Describe computes a moment Summary of xs. It returns ErrEmpty for an
// empty slice. A single observation yields zero spread and zero-valued
// shape statistics.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	m2 /= n
	m3 /= n
	m4 /= n
	s.StdDev = math.Sqrt(m2)
	if m2 > 0 {
		s.Skewness = m3 / math.Pow(m2, 1.5)
		s.Kurtosis = m4 / (m2 * m2)
	}
	return s, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type 7, the R/S-plus default the
// paper's environment would have used). xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile fraction outside [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// Quantiles returns the quantiles of xs at each fraction in qs, sorting xs
// only once. It fails if any fraction is outside [0,1].
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, errors.New("stats: quantile fraction outside [0,1]")
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

// quantileSorted computes the type-7 quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// PopulationSummary is the row format of the paper's Table 3: selected
// quantiles plus mean and standard deviation of a full distribution.
type PopulationSummary struct {
	Min, P5, P25, Median, P75, P95, Max float64
	Mean, StdDev                        float64
}

// Population computes a Table 3 style summary of xs.
func Population(xs []float64) (PopulationSummary, error) {
	qs, err := Quantiles(xs, 0, 0.05, 0.25, 0.5, 0.75, 0.95, 1)
	if err != nil {
		return PopulationSummary{}, err
	}
	d, err := Describe(xs)
	if err != nil {
		return PopulationSummary{}, err
	}
	return PopulationSummary{
		Min: qs[0], P5: qs[1], P25: qs[2], Median: qs[3],
		P75: qs[4], P95: qs[5], Max: qs[6],
		Mean: d.Mean, StdDev: d.StdDev,
	}, nil
}
