package stats

import (
	"math"
	"testing"
	"testing/quick"

	"netsample/internal/dist"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescribeBasic(t *testing.T) {
	s, err := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("N/min/max wrong: %+v", s)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almost(s.StdDev, 2, 1e-12) { // classic example: population σ = 2
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestDescribeEmpty(t *testing.T) {
	if _, err := Describe(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestDescribeSingle(t *testing.T) {
	s, err := Describe([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 42 || s.StdDev != 0 || s.Skewness != 0 || s.Kurtosis != 0 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
}

func TestDescribeNormalShape(t *testing.T) {
	// Skewness ~0 and kurtosis ~3 for normal data.
	r := dist.NewRNG(31)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	s, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Skewness) > 0.05 {
		t.Errorf("normal skewness = %v", s.Skewness)
	}
	if math.Abs(s.Kurtosis-3) > 0.1 {
		t.Errorf("normal kurtosis = %v", s.Kurtosis)
	}
}

func TestDescribeExponentialShape(t *testing.T) {
	// Exponential: skew 2, kurtosis 9.
	r := dist.NewRNG(32)
	xs := make([]float64, 300000)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	s, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Skewness-2) > 0.1 {
		t.Errorf("exp skewness = %v", s.Skewness)
	}
	if math.Abs(s.Kurtosis-9) > 0.6 {
		t.Errorf("exp kurtosis = %v", s.Kurtosis)
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("empty should fail")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q<0 should fail")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q>1 should fail")
	}
	if _, err := Quantiles([]float64{1, 2}, 0.5, math.NaN()); err == nil {
		t.Error("NaN fraction should fail")
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	got, err := Quantile([]float64{5, 1, 4, 2, 3}, 0.5)
	if err != nil || got != 3 {
		t.Fatalf("median of shuffled = %v, %v", got, err)
	}
}

func TestQuantilesMatchQuantile(t *testing.T) {
	r := dist.NewRNG(33)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	qs := []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1}
	batch, err := Quantiles(xs, qs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Errorf("mismatch at q=%v: %v vs %v", q, batch[i], single)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := dist.NewRNG(34)
	f := func(seed int64) bool {
		rr := dist.NewRNG(uint64(seed))
		n := 1 + rr.IntN(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormFloat64() * 10
		}
		q1 := r.Float64()
		q2 := q1 + (1-q1)*r.Float64()
		v1, err1 := Quantile(xs, q1)
		v2, err2 := Quantile(xs, q2)
		return err1 == nil && err2 == nil && v2 >= v1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopulationSummary(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	p, err := Population(xs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Min != 0 || p.Max != 100 || p.Median != 50 || p.P25 != 25 || p.P75 != 75 {
		t.Fatalf("population summary wrong: %+v", p)
	}
	if !almost(p.Mean, 50, 1e-12) {
		t.Errorf("mean = %v", p.Mean)
	}
}

func TestPopulationEmpty(t *testing.T) {
	if _, err := Population(nil); err == nil {
		t.Fatal("empty population should fail")
	}
}

func TestRunningMatchesDescribe(t *testing.T) {
	r := dist.NewRNG(35)
	xs := make([]float64, 5000)
	var run Running
	for i := range xs {
		xs[i] = r.NormFloat64()*13 + 7
		run.Add(xs[i])
	}
	s, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	if run.N() != int64(s.N) {
		t.Errorf("N mismatch")
	}
	if !almost(run.Mean(), s.Mean, 1e-9) {
		t.Errorf("mean %v vs %v", run.Mean(), s.Mean)
	}
	if !almost(run.StdDev(), s.StdDev, 1e-9) {
		t.Errorf("stddev %v vs %v", run.StdDev(), s.StdDev)
	}
	if run.Min() != s.Min || run.Max() != s.Max {
		t.Errorf("min/max mismatch")
	}
}

func TestRunningMerge(t *testing.T) {
	r := dist.NewRNG(36)
	var all, a, b Running
	for i := 0; i < 4000; i++ {
		x := r.ExpFloat64() * 3
		all.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almost(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almost(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merge of empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Errorf("merge into empty: %+v", b)
	}
}

func TestRunningZeroValue(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Error("zero Running not neutral")
	}
	r.Add(5)
	if r.Variance() != 0 {
		t.Error("single observation variance should be 0")
	}
}
