package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts observations falling into half-open bins defined by a
// strictly increasing edge slice: bin i covers [Edges[i], Edges[i+1]).
// Values below Edges[0] or at/above Edges[len-1] fall into the two
// overflow counters so totals are always conserved — the conservation
// property the chi-square machinery depends on.
type Histogram struct {
	Edges     []float64
	Counts    []int64
	Underflow int64
	Overflow  int64
}

// NewHistogram creates a histogram over the given edges. At least two
// strictly increasing edges are required.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, errors.New("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) { // also rejects NaN
			return nil, fmt.Errorf("stats: histogram edges not strictly increasing at %d", i)
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int64, len(edges)-1),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Edges[0]:
		h.Underflow++
	case x >= h.Edges[len(h.Edges)-1]:
		h.Overflow++
	default:
		// Binary search for the bin with Edges[i] <= x < Edges[i+1].
		i := sort.SearchFloat64s(h.Edges, x)
		//nslint:allow floateq exact tie-break against a stored edge value, not a computed quantity
		if i < len(h.Edges) && h.Edges[i] == x {
			// x sits exactly on edge i: it belongs to bin i.
			h.Counts[i]++
		} else {
			h.Counts[i-1]++
		}
	}
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations, including overflow
// and underflow.
func (h *Histogram) Total() int64 {
	t := h.Underflow + h.Overflow
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Proportions returns each bin count divided by the in-range total. It
// returns nil if no observation fell inside the edges.
func (h *Histogram) Proportions() []float64 {
	var in int64
	for _, c := range h.Counts {
		in += c
	}
	if in == 0 {
		return nil
	}
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(in)
	}
	return out
}

// Reset zeroes all counters, keeping the edges.
func (h *Histogram) Reset() {
	h.Underflow, h.Overflow = 0, 0
	for i := range h.Counts {
		h.Counts[i] = 0
	}
}

// String renders a compact text view of the histogram, useful in example
// programs and experiment output.
func (h *Histogram) String() string {
	var b strings.Builder
	total := h.Total()
	for i, c := range h.Counts {
		frac := 0.0
		if total > 0 {
			frac = float64(c) / float64(total)
		}
		fmt.Fprintf(&b, "[%g, %g): %d (%.1f%%)\n", h.Edges[i], h.Edges[i+1], c, 100*frac)
	}
	if h.Underflow > 0 {
		fmt.Fprintf(&b, "underflow: %d\n", h.Underflow)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "overflow: %d\n", h.Overflow)
	}
	return b.String()
}

// FixedWidthEdges returns n+1 edges spanning [lo, hi] in n equal bins.
func FixedWidthEdges(lo, hi float64, n int) ([]float64, error) {
	if n < 1 || !(hi > lo) {
		return nil, errors.New("stats: invalid fixed-width edge parameters")
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	edges[n] = hi
	return edges, nil
}

// QuantileEdges returns n+1 edges placing roughly equal numbers of the
// observations xs in each of n bins. Duplicate quantile values (common in
// highly discrete data such as 400 µs clock ticks) are collapsed, so the
// result may have fewer bins than requested; at least two edges are
// always returned for non-empty input.
func QuantileEdges(xs []float64, n int) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if n < 1 {
		return nil, errors.New("stats: quantile bin count must be positive")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	edges := []float64{sorted[0]}
	for i := 1; i < n; i++ {
		q := quantileSorted(sorted, float64(i)/float64(n))
		if q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	top := sorted[len(sorted)-1]
	// Nudge the top edge so the maximum lands inside the last bin rather
	// than in overflow.
	top = math.Nextafter(top, math.Inf(1))
	if top > edges[len(edges)-1] {
		edges = append(edges, top)
	} else {
		edges = append(edges, edges[len(edges)-1]+1)
	}
	return edges, nil
}
