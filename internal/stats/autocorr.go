package stats

import "errors"

// Autocorrelation returns the sample autocorrelation of xs at the given
// lags: r(h) = Σ(x_t-µ)(x_{t+h}-µ) / Σ(x_t-µ)². It underpins the §5
// efficiency theory of the paper: positive correlation between elements
// within a systematic sample makes stratified or simple random sampling
// more efficient, while a randomly ordered population makes all three
// equivalent.
func Autocorrelation(xs []float64, lags ...int) ([]float64, error) {
	if len(xs) < 2 {
		return nil, ErrEmpty
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var denom float64
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	if denom == 0 {
		return nil, errors.New("stats: zero variance, autocorrelation undefined")
	}
	out := make([]float64, len(lags))
	for i, h := range lags {
		if h < 0 || h >= len(xs) {
			return nil, errors.New("stats: lag outside [0, n)")
		}
		var num float64
		for t := 0; t+h < len(xs); t++ {
			num += (xs[t] - mean) * (xs[t+h] - mean)
		}
		out[i] = num / denom
	}
	return out, nil
}
