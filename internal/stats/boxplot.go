package stats

import "sort"

// Boxplot is the five-number summary underlying the paper's Figure 6
// boxplots, following the convention stated in the paper's footnote: the
// whiskers extend to the most extreme data point within 1.5 interquartile
// ranges of the box (and the box spans the quartiles). Points beyond the
// whiskers are reported as outliers.
type Boxplot struct {
	N           int
	LowWhisker  float64
	Q1          float64
	Median      float64
	Q3          float64
	HighWhisker float64
	Mean        float64
	Outliers    []float64
}

// NewBoxplot computes the boxplot summary of xs.
func NewBoxplot(xs []float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := Boxplot{
		N:      len(sorted),
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	b.Mean = sum / float64(len(sorted))
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	// Whiskers reach the extreme data values inside the fences.
	b.LowWhisker = b.Q1
	for _, x := range sorted {
		if x >= loFence {
			b.LowWhisker = x
			break
		}
	}
	b.HighWhisker = b.Q3
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i] <= hiFence {
			b.HighWhisker = sorted[i]
			break
		}
	}
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b, nil
}
