package stats

import "math"

// Running accumulates count, mean and variance in one pass using
// Welford's algorithm, so node simulations and collectors can summarize
// arbitrarily long packet streams without buffering them. The zero value
// is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean, or 0 before any observation.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 before any observation.
func (r *Running) Max() float64 { return r.max }

// Merge folds another Running accumulator into r, as if every observation
// seen by o had been Added to r (Chan et al. parallel combination). Useful
// for combining per-subsystem statistics at a node's main processor.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := n1 + n2
	r.mean += delta * n2 / total
	r.m2 += o.m2 + delta*delta*n1*n2/total
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}
