package stats

import (
	"errors"
	"sort"
)

// P2 estimates a single quantile of a stream in O(1) space using the
// P² algorithm (Jain & Chlamtac, 1985): five markers whose heights are
// adjusted with piecewise-parabolic interpolation as observations
// arrive. A collection agent can track, say, the median packet size for
// a whole poll interval without buffering the interval's packets —
// the same constraint that drove the backbone to sampling.
type P2 struct {
	q       float64
	n       [5]int     // marker positions (1-based counts)
	np      [5]float64 // desired positions
	dnp     [5]float64 // desired position increments
	heights [5]float64
	count   int
}

// NewP2 builds an estimator for the q-th quantile, 0 < q < 1.
func NewP2(q float64) (*P2, error) {
	if !(q > 0 && q < 1) {
		return nil, errors.New("stats: p2 quantile must be in (0,1)")
	}
	p := &P2{q: q}
	p.np = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.dnp = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// Add records one observation.
func (p *P2) Add(x float64) {
	if p.count < 5 {
		p.heights[p.count] = x
		p.count++
		if p.count == 5 {
			sort.Float64s(p.heights[:])
			for i := range p.n {
				p.n[i] = i + 1
			}
		}
		return
	}
	p.count++
	// Find the cell k containing x and update extreme heights.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.n[i]++
	}
	for i := range p.np {
		p.np[i] += p.dnp[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.np[i] - float64(p.n[i])
		if (d >= 1 && p.n[i+1]-p.n[i] > 1) || (d <= -1 && p.n[i-1]-p.n[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			h := p.parabolic(i, float64(s))
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (p *P2) parabolic(i int, d float64) float64 {
	ni := float64(p.n[i])
	nm := float64(p.n[i-1])
	np := float64(p.n[i+1])
	return p.heights[i] + d/(np-nm)*
		((ni-nm+d)*(p.heights[i+1]-p.heights[i])/(np-ni)+
			(np-ni-d)*(p.heights[i]-p.heights[i-1])/(ni-nm))
}

// linear is the fallback height prediction.
func (p *P2) linear(i, s int) float64 {
	return p.heights[i] + float64(s)*(p.heights[i+s]-p.heights[i])/
		float64(p.n[i+s]-p.n[i])
}

// N returns the number of observations.
func (p *P2) N() int { return p.count }

// Quantile returns the current estimate. With fewer than five
// observations it falls back to the exact small-sample quantile.
func (p *P2) Quantile() (float64, error) {
	if p.count == 0 {
		return 0, ErrEmpty
	}
	if p.count < 5 {
		xs := append([]float64(nil), p.heights[:p.count]...)
		sort.Float64s(xs)
		return quantileSorted(xs, p.q), nil
	}
	return p.heights[2], nil
}
