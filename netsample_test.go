package netsample

import (
	"bytes"
	"testing"
)

// The facade tests exercise the public API exactly as README documents
// it, on the fast two-minute population.

func facadeTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Generate(SmallConfig(4711))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFacadeQuickstartFlow(t *testing.T) {
	tr := facadeTrace(t)
	ev, err := NewSizeEvaluator(tr)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Systematic(50).Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := ev.Phi(idx)
	if err != nil {
		t.Fatal(err)
	}
	if phi < 0 || phi > 0.2 {
		t.Fatalf("phi = %v, expected a small score for 1-in-50", phi)
	}
}

func TestFacadeSamplers(t *testing.T) {
	tr := facadeTrace(t)
	r := NewRNG(1)
	samplers := []Sampler{
		Systematic(100),
		SystematicAt(100, 37),
		Stratified(100),
		Random(100),
	}
	st, err := SystematicTimer(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := StratifiedTimer(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	samplers = append(samplers, st, rt)
	for _, s := range samplers {
		idx, err := s.Select(tr, r.Split())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(idx) == 0 {
			t.Fatalf("%s selected nothing", s.Name())
		}
		// Roughly 1% of the population.
		frac := float64(len(idx)) / float64(tr.Len())
		if frac < 0.004 || frac > 0.02 {
			t.Errorf("%s fraction = %v, want ≈0.01", s.Name(), frac)
		}
	}
}

func TestFacadeInterarrivalEvaluator(t *testing.T) {
	tr := facadeTrace(t)
	ev, err := NewInterarrivalEvaluator(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Target() != TargetInterarrival {
		t.Fatal("wrong target")
	}
	idx, err := Stratified(64).Select(tr, NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Score(idx)
	if err != nil {
		t.Fatal(err)
	}
	var zero Report
	if rep == zero {
		t.Fatal("empty report")
	}
}

func TestFacadeTraceIO(t *testing.T) {
	tr := facadeTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip %d != %d", got.Len(), tr.Len())
	}
}

func TestFacadeSampleSize(t *testing.T) {
	// The paper's worked example.
	n, err := SampleSizeForMean(232, 236, 5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1587 || n > 1593 {
		t.Fatalf("n = %d, want ≈1590", n)
	}
}

func TestFacadeDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Duration != Hour || cfg.TargetPPS != 424 || cfg.ClockUS != 400 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
}
