// Command artsnode runs a simulated backbone node agent: it replays a
// trace (or generates one) through the node's statistics path —
// optionally with the T3 firmware's 1-in-k sampling — and serves
// ARTS-style object reports over TCP for a NOC collector (see
// cmd/noccollect).
//
// Usage:
//
//	artsnode -listen 127.0.0.1:4501 -name ENSS-SanDiego [-backbone t3]
//	         [-k 50] [-in trace.nstr] [-replay-seconds 60] [-rate 1000]
//
// The node replays traffic in simulated time as fast as possible,
// re-replaying the trace in a loop with -loop.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netsample/internal/arts"
	"netsample/internal/collect"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("artsnode: ")

	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	name := flag.String("name", "ENSS-SanDiego", "node name in reports")
	backbone := flag.String("backbone", "t3", "t1|t3 object profile")
	k := flag.Int("k", 50, "firmware sampling granularity (1 = unsampled)")
	in := flag.String("in", "", "NSTR trace to replay (default: generate)")
	seconds := flag.Int("replay-seconds", 60, "generated trace duration")
	rate := flag.Float64("rate", 1000, "generated trace packets/second")
	loop := flag.Bool("loop", false, "re-replay the trace forever")
	realtime := flag.Bool("realtime", false, "pace the replay at trace timestamps")
	flag.Parse()

	var bb arts.Backbone
	switch *backbone {
	case "t1":
		bb = arts.T1
	case "t3":
		bb = arts.T3
	default:
		log.Fatalf("unknown backbone %q", *backbone)
	}

	tr, err := loadOrGenerate(*in, *seconds, *rate)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}

	agent := collect.NewAgent(*name, bb)
	addr, err := agent.Serve(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("agent %s (%s objects) listening on %s\n", *name, bb, addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// quit is a close-broadcast seam: the signal is consumed once here,
	// and closing quit fans the shutdown out to the replayer, whose exit
	// is then joined before the agent is torn down under it.
	quit := make(chan struct{})
	replayDone := make(chan struct{})
	go func() {
		defer close(replayDone)
		replay(agent, tr, *k, *loop, *realtime, quit)
	}()

	<-stop
	fmt.Println("shutting down")
	close(quit)
	<-replayDone
	if err := agent.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

// loadOrGenerate reads an NSTR file or synthesizes a trace.
func loadOrGenerate(path string, seconds int, rate float64) (*trace.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	cfg := traffgen.NSFNETHour()
	cfg.Duration = time.Duration(seconds) * time.Second
	cfg.TargetPPS = rate
	return traffgen.Generate(cfg)
}

// replay feeds the trace through the agent, applying 1-in-k firmware
// selection with scale-up weight k.
func replay(agent *collect.Agent, tr *trace.Trace, k int, loop, realtime bool, stop <-chan struct{}) {
	if k < 1 {
		k = 1
	}
	for {
		counter := 0
		var prev int64
		for _, p := range tr.Packets {
			select {
			case <-stop:
				return
			default:
			}
			if realtime && p.Time > prev {
				time.Sleep(time.Duration(p.Time-prev) * time.Microsecond)
				prev = p.Time
			}
			counter++
			if counter%k == 0 {
				agent.Record(p, uint64(k))
			}
		}
		if !loop {
			return
		}
	}
}
