// Command nsd is the streaming characterization daemon: the node-side
// system of the paper's Section 2, built on internal/pipeline. It runs
// one of the paper's sampling methods over a packet stream across N
// worker shards, maintains windowed size/interarrival histograms, flow
// accounting, and heavy-hitter sketches over the selected packets,
// scores each window against the reference population (φ and friends),
// and exports the latest snapshot over the collect wire protocol so a
// NOC can poll it (Collector.PollSnapshot).
//
// Usage:
//
//	nsd -in trace.nstr [-method systematic] [-k 100] [-shards 1]
//	    [-window 0] [-listen 127.0.0.1:0] ...
//	nsd -gen [-seconds 120] [-pps 424] [-scenario ddos] ...
//	nsd -gen -adaptive -window 5s [-k 16] [-min-k 4] [-max-k 4096]
//	    [-target 0.25] [-drop-budget 0] ...
//
// -adaptive replaces the fixed sampler with the closed-loop controller
// of DESIGN.md §16: every window barrier, the merged snapshot's drop
// rate and worst φ steer the next window's systematic k inside
// [-min-k, -max-k], starting from -k. The decision runs on the virtual
// clock at the stream cut, so an adaptive run stays bit-identical for
// any -shards/-ingest-workers combination at the same seed.
//
// The daemon is deterministic: all randomness comes from -seed, and
// windowing runs on the virtual clock of the packet timestamps. With
// one shard, the final snapshot's reports are bit-identical to the
// batch evaluator in internal/core on the same trace and seed (pinned
// by a tier-1 test); -ingest-workers parallelizes the hash/fan-out
// stage without changing any output under the block policy.
// SIGINT/SIGTERM drain the pipeline cleanly and the final snapshot is
// printed before exit.
//
// Retention: -store appends every cut window snapshot to an append-only
// Merkle-chained segment store (internal/store, DESIGN.md §14); query it
// offline with nocquery, which replays the exact wire payloads the live
// exporter serves.
//
// Profiling: -pprof serves net/http/pprof on the given address, and
// -mutex-profile-fraction / -block-profile-rate enable the runtime's
// contention profilers, so ring and scheduler behavior is observable in
// production runs (see README for a capture recipe).
//
// Placement: -topology prints the detected CPU/cache layout and the
// thread plan for the configured shard/worker counts; -pin applies it,
// pinning the reader, ingest workers, and shard workers so each SPSC
// ring's producer/consumer pair shares an LLC domain (best-effort —
// rejected affinity calls are logged after the run, and output is
// identical either way; DESIGN.md §15).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"netsample/internal/arts"
	"netsample/internal/bins"
	"netsample/internal/collect"
	"netsample/internal/core"
	"netsample/internal/cputopo"
	"netsample/internal/dist"
	"netsample/internal/online"
	"netsample/internal/pipeline"
	"netsample/internal/store"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nsd: ")

	var (
		listen   = flag.String("listen", "127.0.0.1:0", "agent listen address")
		in       = flag.String("in", "", "NSTR trace file to stream (mutually exclusive with -gen)")
		gen      = flag.Bool("gen", false, "generate the input with traffgen instead of reading a file")
		seconds  = flag.Int("seconds", 120, "generated trace duration in seconds (-gen)")
		pps      = flag.Float64("pps", 424, "generated average packets per second (-gen)")
		scenario = flag.String("scenario", "", "generate a preset anomaly scenario instead of steady-state traffic (-gen): "+strings.Join(traffgen.ScenarioNames(), ", "))
		method   = flag.String("method", "systematic",
			"sampling method: systematic, stratified, systematic-timer, stratified-timer")
		k             = flag.Int("k", 100, "sampling granularity (1 in k packets, or the timer equivalent)")
		adaptive      = flag.Bool("adaptive", false, "closed-loop systematic sampling: steer k per window against -target and -drop-budget (requires -window > 0; -k is the starting granularity)")
		minK          = flag.Int("min-k", 1, "adaptive: finest granularity the controller may choose")
		maxK          = flag.Int("max-k", 4096, "adaptive: coarsest granularity the controller may choose")
		targetPhi     = flag.Float64("target", 0.25, "adaptive: φ budget; refine when a window's worst φ exceeds it")
		dropBudget    = flag.Float64("drop-budget", 0, "adaptive: tolerated drop fraction per window before coarsening")
		shards        = flag.Int("shards", 1, "worker shard count")
		ingestWorkers = flag.Int("ingest-workers", 1, "parallel ingest (hash/fan-out) workers")
		window        = flag.Duration("window", 0, "snapshot window on the trace's virtual clock (0 = one final window)")
		seed          = flag.Uint64("seed", 1993, "root RNG seed for random methods and -gen")
		queue         = flag.Int("queue", pipeline.DefaultQueueDepth, "per-shard queue depth in batches")
		batch         = flag.Int("batch", pipeline.DefaultBatchSize, "ingest batch size in packets")
		policy        = flag.String("policy", "block", "overload policy: block or drop")
		topk          = flag.Int("topk", pipeline.DefaultTopKReport, "heavy-hitter flows per snapshot")
		flowTimeout   = flag.Duration("flow-timeout", 15*time.Second, "flow idle timeout on the virtual clock")
		name          = flag.String("name", "nsd", "node name in exported snapshots")
		storeDir      = flag.String("store", "", "persist every window snapshot to this store directory (append-only segment log)")
		storeSync     = flag.Int("store-sync", store.DefaultSyncEvery, "store group commit: fsync once per this many snapshots")
		storeSegment  = flag.Int("store-segment", store.DefaultSegmentRecords, "snapshots per store segment before it is sealed")
		pin           = flag.Bool("pin", false, "pin reader/ingest/shard threads to CPUs, topology-aware (best-effort; see -topology)")
		topology      = flag.Bool("topology", false, "print the detected CPU/cache topology and the placement plan, then exit")
		once          = flag.Bool("once", false, "exit when the source drains instead of serving until a signal")
		quiet         = flag.Bool("q", false, "suppress per-window snapshot lines")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")
		mutexFrac     = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction rate (0 = off)")
		blockRate     = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate in ns (0 = off)")
	)
	flag.Parse()

	if *topology {
		topo := cputopo.Detect()
		fmt.Println(topo.Summary())
		plan := cputopo.Plan(topo, *ingestWorkers, *shards)
		fmt.Printf("plan (reader + %d ingest + %d shards): reader cpu %d, ingest %v, shards %v\n",
			*ingestWorkers, *shards, plan.Reader, plan.Ingest, plan.Shards)
		return
	}

	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof: %v", err)
		}
		log.Printf("pprof listening on %s", ln.Addr())
		//nslint:allow waitstall pprof server is process-lifetime by design; the listener dies with the daemon
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.Serve(ln, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	if (*in == "") == !*gen {
		log.Fatal("exactly one of -in or -gen is required")
	}
	tr, src, closeSrc, err := loadSource(*in, *gen, *scenario, *seconds, *pps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if tr.Len() == 0 {
		log.Fatal("input trace is empty")
	}

	cfg, err := buildConfig(tr, *method, *k, *shards, *window, *seed,
		*queue, *batch, *policy, *topk, *flowTimeout)
	if err != nil {
		log.Fatal(err)
	}
	if *adaptive {
		if *method != "systematic" {
			log.Fatalf("-adaptive steers systematic granularity; -method %s is not supported", *method)
		}
		if *window <= 0 {
			log.Fatal("-adaptive needs -window > 0: decisions happen at window barriers")
		}
		cfg.NewSampler = nil
		cfg.Adaptive = &pipeline.AdaptiveConfig{
			MinK:       *minK,
			MaxK:       *maxK,
			StartK:     *k,
			TargetPhi:  *targetPhi,
			DropBudget: *dropBudget,
		}
	}
	cfg.IngestWorkers = *ingestWorkers
	cfg.Pinning = *pin
	var sw *store.Writer
	if *storeDir != "" {
		sw, err = store.Open(*storeDir, store.Options{
			SyncEvery:      *storeSync,
			SegmentRecords: *storeSegment,
		})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
	}
	if !*quiet || sw != nil {
		cfg.OnSnapshot = func(s *pipeline.Snapshot) {
			if !*quiet {
				fmt.Println(summarize(s))
			}
			if sw != nil {
				// The persisted record is the exact wire payload the
				// exporter would serve, so a cold replay of the store is
				// bit-identical to the live export.
				if err := sw.AppendSnapshot(s.Wire(*name)); err != nil {
					log.Printf("store: %v", err)
				}
			}
		}
	}
	p, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	agent := collect.NewAgent(*name, arts.T3)
	agent.Snapshots = pipeline.NewExporter(p, *name)
	addr, err := agent.Serve(*listen)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	// The banner is part of the CLI contract: tests and scripts parse the
	// bound address from it.
	fmt.Printf("nsd: listening on %s\n", addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	stopped := make(chan struct{})
	go func() {
		<-sigc
		log.Print("signal received; draining")
		p.Stop()
		close(stopped)
	}()

	if err := p.Run(src); err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	if n := p.PinFailures(); n > 0 {
		log.Printf("pinning: %d affinity calls rejected (cgroup cpuset or non-Linux); ran unpinned", n)
	}
	// The mapping outlives Run (workers hold views into it until the
	// pipeline drains); release it only once the run is over.
	if err := closeSrc(); err != nil {
		log.Printf("close input: %v", err)
	}
	if final, ok := p.Latest(); ok && *quiet {
		fmt.Println(summarize(final))
	}
	if sw != nil {
		// Flush and fsync the tail; the segment stays unsealed so the
		// next run resumes it.
		if err := sw.Close(); err != nil {
			log.Printf("store: %v", err)
		}
	}

	if !*once {
		select {
		case <-stopped:
		default:
			log.Print("source drained; serving snapshots until SIGINT/SIGTERM")
			<-stopped
		}
	}
	// A crashed accept loop (exhausted retries, listener closed
	// underneath us) must be visible at shutdown, not silently folded
	// into a clean exit.
	if err := agent.Err(); err != nil {
		log.Printf("agent: %v", err)
	}
	if err := agent.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

// loadSource opens the daemon's input: the reference population trace
// (which snapshot scoring needs in memory) plus the pipeline source to
// stream, plus a release to call once Run returns. A file input is
// memory-mapped: the pipeline ingests raw record windows straight out
// of the page cache (the zero-copy path, DESIGN.md §13) while the
// reference trace is materialized once from the same mapping.
// Generated input replays from memory and its release is a no-op.
func loadSource(in string, gen bool, scenario string, seconds int, pps float64, seed uint64) (*trace.Trace, pipeline.Source, func() error, error) {
	if gen {
		if scenario != "" {
			s, err := traffgen.PresetScenario(scenario, seed, time.Duration(seconds)*time.Second)
			if err != nil {
				return nil, nil, nil, err
			}
			tr, err := traffgen.GenerateScenario(s)
			if err != nil {
				return nil, nil, nil, err
			}
			return tr, tr.Replay(), func() error { return nil }, nil
		}
		cfg := traffgen.NSFNETHour()
		cfg.Seed = seed
		cfg.Duration = time.Duration(seconds) * time.Second
		cfg.TargetPPS = pps
		tr, err := traffgen.Generate(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return tr, tr.Replay(), func() error { return nil }, nil
	}
	mr, err := trace.OpenMap(in)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := mr.Trace()
	if err != nil {
		// The format error is the one to report; an unmap failure on the
		// abandoned mapping has no caller-visible effect.
		//nslint:allow errdrop trace materialization failed; the munmap error would mask the real cause
		mr.Close()
		return nil, nil, nil, err
	}
	return tr, mr, mr.Close, nil
}

// buildConfig assembles the pipeline configuration: per-shard samplers
// split off one seeded root RNG in shard order, and the reference
// evaluators reuse the input trace as the known parent population.
func buildConfig(tr *trace.Trace, method string, k, shards int,
	window time.Duration, seed uint64, queue, batch int, policy string,
	topk int, flowTimeout time.Duration) (pipeline.Config, error) {

	cfg := pipeline.Config{
		Shards:        shards,
		QueueDepth:    queue,
		BatchSize:     batch,
		WindowUS:      window.Microseconds(),
		TopKReport:    topk,
		FlowTimeoutUS: flowTimeout.Microseconds(),
	}
	switch policy {
	case "block":
		cfg.Policy = pipeline.Block
	case "drop":
		cfg.Policy = pipeline.Drop
	default:
		return cfg, fmt.Errorf("unknown -policy %q (want block or drop)", policy)
	}

	root := dist.NewRNG(seed)
	switch method {
	case "systematic":
		cfg.NewSampler = func(int) (online.Sampler, error) {
			return online.NewSystematic(k, 0)
		}
	case "stratified":
		rngs := splitRNGs(root, shards)
		cfg.NewSampler = func(shard int) (online.Sampler, error) {
			return online.NewStratified(k, rngs[shard])
		}
	case "systematic-timer":
		period, err := core.PeriodForGranularity(tr, float64(k))
		if err != nil {
			return cfg, err
		}
		cfg.NewSampler = func(int) (online.Sampler, error) {
			return online.NewSystematicTimer(period, 0)
		}
	case "stratified-timer":
		period, err := core.PeriodForGranularity(tr, float64(k))
		if err != nil {
			return cfg, err
		}
		rngs := splitRNGs(root, shards)
		cfg.NewSampler = func(shard int) (online.Sampler, error) {
			return online.NewStratifiedTimer(period, rngs[shard])
		}
	default:
		return cfg, fmt.Errorf("unknown -method %q", method)
	}

	var err error
	if cfg.SizeEval, err = core.NewEvaluator(tr, core.TargetSize, bins.PacketSize()); err != nil {
		return cfg, fmt.Errorf("size evaluator: %w", err)
	}
	if cfg.IatEval, err = core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival()); err != nil {
		return cfg, fmt.Errorf("interarrival evaluator: %w", err)
	}
	return cfg, nil
}

// splitRNGs derives one independent child RNG per shard, in shard
// order, so runs are reproducible for any shard count.
func splitRNGs(root *dist.RNG, shards int) []*dist.RNG {
	out := make([]*dist.RNG, shards)
	for i := range out {
		out[i] = root.Split()
	}
	return out
}

// summarize renders one snapshot line for the operator.
func summarize(s *pipeline.Snapshot) string {
	line := fmt.Sprintf("window %d [%dus,%dus)", s.Seq, s.WindowStartUS, s.WindowEndUS)
	if s.Final {
		line += " final"
	}
	line += fmt.Sprintf(": offered=%d processed=%d selected=%d dropped=%d flows=%d",
		s.Offered, s.Processed, s.Selected, s.Dropped, s.Flows.Flows)
	if s.K > 0 {
		line += fmt.Sprintf(" k=%d", s.K)
	}
	if s.SizeReport != nil {
		line += fmt.Sprintf(" phi[size]=%.4f", s.SizeReport.Phi)
	}
	if s.IatReport != nil {
		line += fmt.Sprintf(" phi[iat]=%.4f", s.IatReport.Phi)
	}
	return line
}
