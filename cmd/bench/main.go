// Command bench runs the repository's canonical benchmark suite
// (bench_test.go at the module root) via `go test -bench` and writes the
// results as machine-readable JSON, so the performance trajectory can be
// recorded commit over commit and diffed in review.
//
// Usage:
//
//	bench [-bench regex] [-benchtime 1x] [-count 1] [-pkg .] [-o BENCH.json]
//	      [-compare old.json] [-tolerance 1.25] [-warn-only]
//
// The output is deliberately free of timestamps and host-volatile noise
// beyond the cpu/goos/goarch header go test itself reports: the file is
// meant to be checked in, and git history supplies the dates.
//
// With -compare, the run is also diffed against a baseline file
// (typically the checked-in BENCH.json): per-benchmark and geomean
// ns/op ratios are printed, and benchmarks slower than -tolerance exit
// non-zero unless -warn-only is set (the CI smoke job runs warn-only,
// since 1x iteration counts are noisy by construction).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"

	"netsample/internal/benchjson"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	benchRe := flag.String("bench", ".", "regexp selecting benchmarks to run")
	benchtime := flag.String("benchtime", "1x", "per-benchmark duration or iteration count")
	count := flag.Int("count", 1, "number of runs per benchmark")
	pkg := flag.String("pkg", ".", "package pattern holding the benchmarks")
	out := flag.String("o", "BENCH.json", "output file; - writes to stdout")
	compare := flag.String("compare", "", "baseline BENCH.json to diff the run against")
	tolerance := flag.Float64("tolerance", 1.25, "regression threshold ratio for -compare")
	warnOnly := flag.Bool("warn-only", false, "report -compare regressions without failing")
	flag.Parse()

	cmd := exec.Command("go", "test",
		"-run=^$",
		"-bench="+*benchRe,
		"-benchmem",
		"-benchtime="+*benchtime,
		fmt.Sprintf("-count=%d", *count),
		*pkg,
	)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	log.Printf("running %v", cmd.Args)
	if err := cmd.Run(); err != nil {
		// Surface whatever go test printed before failing.
		os.Stderr.Write(stdout.Bytes())
		log.Fatalf("go test: %v", err)
	}

	f, err := benchjson.Parse(&stdout)
	if err != nil {
		log.Fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		log.Fatalf("no benchmarks matched %q in %s", *benchRe, *pkg)
	}
	f.GoVersion = runtime.Version()

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d benchmarks to %s", len(f.Benchmarks), *out)
	}

	if *compare == "" {
		return
	}
	base, err := os.Open(*compare)
	if err != nil {
		log.Fatalf("compare: %v", err)
	}
	var old benchjson.File
	err = json.NewDecoder(base).Decode(&old)
	base.Close()
	if err != nil {
		log.Fatalf("compare: parse %s: %v", *compare, err)
	}
	cmp := benchjson.Compare(&old, f)
	fmt.Print(cmp.Format(*tolerance))
	if regs := cmp.Regressions(*tolerance); len(regs) > 0 {
		if *warnOnly {
			log.Printf("warning: %d benchmarks regressed beyond %.2fx", len(regs), *tolerance)
			return
		}
		log.Fatalf("%d benchmarks regressed beyond %.2fx", len(regs), *tolerance)
	}
}
