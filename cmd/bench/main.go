// Command bench runs the repository's canonical benchmark suite
// (bench_test.go at the module root) via `go test -bench` and writes the
// results as machine-readable JSON, so the performance trajectory can be
// recorded commit over commit and diffed in review.
//
// Usage:
//
//	bench [-bench regex] [-benchtime 1x] [-count 1] [-pkg .] [-cpu list]
//	      [-o BENCH.json] [-append] [-compare old.json] [-tolerance 1.25]
//	      [-warn-only]
//
// The output is deliberately free of timestamps and host-volatile noise
// beyond the cpu/goos/goarch header go test itself reports: the file is
// meant to be checked in, and git history supplies the dates.
//
// With -cpu, the selected benchmarks run once per GOMAXPROCS count
// (go test's -cpu list); the results keep their -N suffix as the
// parsed Procs field and pair suffix-for-suffix under -compare, so a
// multi-core scaling curve can be recorded next to the single-proc
// suite. With -append, the results merge into an existing output file
// instead of replacing it — same-name+procs entries are overwritten in
// place, new ones append — which is how the scaling runs land in the
// checked-in BENCH.json without rerunning everything.
//
// With -compare, the run is also diffed against a baseline file
// (typically the checked-in BENCH.json): per-benchmark and geomean
// ns/op ratios are printed, and benchmarks slower than -tolerance exit
// non-zero unless -warn-only is set (the CI smoke job runs warn-only,
// since 1x iteration counts are noisy by construction).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"

	"netsample/internal/benchjson"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	benchRe := flag.String("bench", ".", "regexp selecting benchmarks to run")
	benchtime := flag.String("benchtime", "1x", "per-benchmark duration or iteration count")
	count := flag.Int("count", 1, "number of runs per benchmark")
	pkg := flag.String("pkg", ".", "package pattern holding the benchmarks")
	cpu := flag.String("cpu", "", "GOMAXPROCS list passed to go test -cpu (e.g. 1,2,4)")
	out := flag.String("o", "BENCH.json", "output file; - writes to stdout")
	appendOut := flag.Bool("append", false, "merge results into an existing -o file by name+procs")
	compare := flag.String("compare", "", "baseline BENCH.json to diff the run against")
	tolerance := flag.Float64("tolerance", 1.25, "regression threshold ratio for -compare")
	warnOnly := flag.Bool("warn-only", false, "report -compare regressions without failing")
	flag.Parse()

	args := []string{"test",
		"-run=^$",
		"-bench=" + *benchRe,
		"-benchmem",
		"-benchtime=" + *benchtime,
		fmt.Sprintf("-count=%d", *count),
	}
	if *cpu != "" {
		args = append(args, "-cpu="+*cpu)
	}
	cmd := exec.Command("go", append(args, *pkg)...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	log.Printf("running %v", cmd.Args)
	if err := cmd.Run(); err != nil {
		// Surface whatever go test printed before failing.
		os.Stderr.Write(stdout.Bytes())
		log.Fatalf("go test: %v", err)
	}

	f, err := benchjson.Parse(&stdout)
	if err != nil {
		log.Fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		log.Fatalf("no benchmarks matched %q in %s", *benchRe, *pkg)
	}
	f.GoVersion = runtime.Version()

	if *appendOut && *out != "-" {
		if prev, err := readFile(*out); err == nil {
			f = mergeFiles(prev, f)
		} else if !os.IsNotExist(err) {
			log.Fatalf("append: %v", err)
		}
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d benchmarks to %s", len(f.Benchmarks), *out)
	}

	if *compare == "" {
		return
	}
	old, err := readFile(*compare)
	if err != nil {
		log.Fatalf("compare: %v", err)
	}
	cmp := benchjson.Compare(old, f)
	fmt.Print(cmp.Format(*tolerance))
	if regs := cmp.Regressions(*tolerance); len(regs) > 0 {
		if *warnOnly {
			log.Printf("warning: %d benchmarks regressed beyond %.2fx", len(regs), *tolerance)
			return
		}
		log.Fatalf("%d benchmarks regressed beyond %.2fx", len(regs), *tolerance)
	}
}

// readFile loads a BENCH.json file.
func readFile(path string) (*benchjson.File, error) {
	g, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	var f benchjson.File
	if err := json.NewDecoder(g).Decode(&f); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	return &f, nil
}

// mergeFiles overlays cur's results onto prev: entries with the same
// full name (including the -N procs suffix) are replaced in place, new
// ones append in run order. Header fields come from the newer run.
func mergeFiles(prev, cur *benchjson.File) *benchjson.File {
	merged := *cur
	merged.Benchmarks = append([]benchjson.Benchmark(nil), prev.Benchmarks...)
	index := make(map[string]int, len(merged.Benchmarks))
	for i := range merged.Benchmarks {
		name := merged.Benchmarks[i].FullName()
		if _, dup := index[name]; !dup {
			index[name] = i
		}
	}
	for _, b := range cur.Benchmarks {
		if i, ok := index[b.FullName()]; ok {
			merged.Benchmarks[i] = b
		} else {
			index[b.FullName()] = len(merged.Benchmarks)
			merged.Benchmarks = append(merged.Benchmarks, b)
		}
	}
	return &merged
}
