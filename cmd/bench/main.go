// Command bench runs the repository's canonical benchmark suite
// (bench_test.go at the module root) via `go test -bench` and writes the
// results as machine-readable JSON, so the performance trajectory can be
// recorded commit over commit and diffed in review.
//
// Usage:
//
//	bench [-bench regex] [-benchtime 1x] [-count 1] [-pkg .] [-cpu list]
//	      [-o BENCH.json] [-append] [-compare old.json] [-tolerance 1.25]
//	      [-warn-only] [-retries N]
//
// The output is deliberately free of timestamps and host-volatile noise
// beyond the cpu/goos/goarch header go test itself reports: the file is
// meant to be checked in, and git history supplies the dates.
//
// With -cpu, the selected benchmarks run once per GOMAXPROCS count
// (go test's -cpu list); the results keep their -N suffix as the
// parsed Procs field and pair suffix-for-suffix under -compare, so a
// multi-core scaling curve can be recorded next to the single-proc
// suite. With -append, the results merge into an existing output file
// instead of replacing it — same-name+procs entries are overwritten in
// place, new ones append — which is how the scaling runs land in the
// checked-in BENCH.json without rerunning everything.
//
// With -compare, the run is also diffed against a baseline file
// (typically the checked-in BENCH.json): per-benchmark and geomean
// ns/op ratios are printed, and benchmarks slower than -tolerance exit
// non-zero unless -warn-only is set.
//
// The rerun policy for gating: with -retries N, a failing comparison
// triggers up to N full reruns of the selected suite, each merged
// best-of (per benchmark, the faster ns/op wins) before re-checking.
// A benchmark therefore fails the gate only if it regresses beyond the
// tolerance in the first run AND every retry — a scheduler hiccup or a
// noisy neighbor washes out, a real slowdown reproduces every time.
// The written -o file carries the final best-of results, so the
// recorded trajectory reflects the machine's capability, not its worst
// moment. This is what lets CI gate hard on 1x-iteration smoke runs:
// the tolerance absorbs per-run jitter, the retries absorb whole-run
// outliers, and anything that survives both is a genuine regression.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"

	"netsample/internal/benchjson"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	benchRe := flag.String("bench", ".", "regexp selecting benchmarks to run")
	benchtime := flag.String("benchtime", "1x", "per-benchmark duration or iteration count")
	count := flag.Int("count", 1, "number of runs per benchmark")
	pkg := flag.String("pkg", ".", "package pattern holding the benchmarks")
	cpu := flag.String("cpu", "", "GOMAXPROCS list passed to go test -cpu (e.g. 1,2,4)")
	out := flag.String("o", "BENCH.json", "output file; - writes to stdout")
	appendOut := flag.Bool("append", false, "merge results into an existing -o file by name+procs")
	compare := flag.String("compare", "", "baseline BENCH.json to diff the run against")
	tolerance := flag.Float64("tolerance", 1.25, "regression threshold ratio for -compare")
	warnOnly := flag.Bool("warn-only", false, "report -compare regressions without failing")
	retries := flag.Int("retries", 0, "rerun a failing -compare up to N times, merging best-of, before failing")
	flag.Parse()

	f := runSuite(*benchRe, *benchtime, *count, *pkg, *cpu)

	var old *benchjson.File
	if *compare != "" {
		var err error
		if old, err = readFile(*compare); err != nil {
			log.Fatalf("compare: %v", err)
		}
		// Rerun policy: a regression must reproduce in the first run and
		// every retry to fail the gate. Each retry merges best-of, so one
		// slow scheduling quantum cannot condemn a benchmark.
		for attempt := 0; attempt < *retries; attempt++ {
			regs := benchjson.Compare(old, f).Regressions(*tolerance)
			if len(regs) == 0 {
				break
			}
			log.Printf("%d benchmarks beyond %.2fx; retry %d/%d of the full suite",
				len(regs), *tolerance, attempt+1, *retries)
			f = bestOf(f, runSuite(*benchRe, *benchtime, *count, *pkg, *cpu))
		}
	}

	if *appendOut && *out != "-" {
		if prev, err := readFile(*out); err == nil {
			f = mergeFiles(prev, f)
		} else if !os.IsNotExist(err) {
			log.Fatalf("append: %v", err)
		}
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d benchmarks to %s", len(f.Benchmarks), *out)
	}

	if old == nil {
		return
	}
	cmp := benchjson.Compare(old, f)
	fmt.Print(cmp.Format(*tolerance))
	if regs := cmp.Regressions(*tolerance); len(regs) > 0 {
		if *warnOnly {
			log.Printf("warning: %d benchmarks regressed beyond %.2fx", len(regs), *tolerance)
			return
		}
		log.Fatalf("%d benchmarks regressed beyond %.2fx after %d retries", len(regs), *tolerance, *retries)
	}
}

// runSuite executes one `go test -bench` pass over the selected
// benchmarks and parses the results.
func runSuite(benchRe, benchtime string, count int, pkg, cpu string) *benchjson.File {
	args := []string{"test",
		"-run=^$",
		"-bench=" + benchRe,
		"-benchmem",
		"-benchtime=" + benchtime,
		fmt.Sprintf("-count=%d", count),
	}
	if cpu != "" {
		args = append(args, "-cpu="+cpu)
	}
	cmd := exec.Command("go", append(args, pkg)...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	log.Printf("running %v", cmd.Args)
	if err := cmd.Run(); err != nil {
		// Surface whatever go test printed before failing.
		os.Stderr.Write(stdout.Bytes())
		log.Fatalf("go test: %v", err)
	}
	f, err := benchjson.Parse(&stdout)
	if err != nil {
		log.Fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		log.Fatalf("no benchmarks matched %q in %s", benchRe, pkg)
	}
	f.GoVersion = runtime.Version()
	return f
}

// bestOf merges a retry into the accumulated results: per benchmark
// (by full name, including the procs suffix), the run with the faster
// ns/op wins; benchmarks appearing in only one run are kept as-is.
func bestOf(acc, retry *benchjson.File) *benchjson.File {
	index := make(map[string]int, len(acc.Benchmarks))
	for i := range acc.Benchmarks {
		index[acc.Benchmarks[i].FullName()] = i
	}
	for _, b := range retry.Benchmarks {
		if i, ok := index[b.FullName()]; ok {
			if b.NsPerOp < acc.Benchmarks[i].NsPerOp {
				acc.Benchmarks[i] = b
			}
		} else {
			acc.Benchmarks = append(acc.Benchmarks, b)
		}
	}
	return acc
}

// readFile loads a BENCH.json file.
func readFile(path string) (*benchjson.File, error) {
	g, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	var f benchjson.File
	if err := json.NewDecoder(g).Decode(&f); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	return &f, nil
}

// mergeFiles overlays cur's results onto prev: entries with the same
// full name (including the -N procs suffix) are replaced in place, new
// ones append in run order. Header fields come from the newer run.
func mergeFiles(prev, cur *benchjson.File) *benchjson.File {
	merged := *cur
	merged.Benchmarks = append([]benchjson.Benchmark(nil), prev.Benchmarks...)
	index := make(map[string]int, len(merged.Benchmarks))
	for i := range merged.Benchmarks {
		name := merged.Benchmarks[i].FullName()
		if _, dup := index[name]; !dup {
			index[name] = i
		}
	}
	for _, b := range cur.Benchmarks {
		if i, ok := index[b.FullName()]; ok {
			merged.Benchmarks[i] = b
		} else {
			index[b.FullName()] = len(merged.Benchmarks)
			merged.Benchmarks = append(merged.Benchmarks, b)
		}
	}
	return &merged
}
