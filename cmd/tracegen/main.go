// Command tracegen synthesizes a packet trace with the statistical
// character of the paper's SDSC→NSFNET measurement environment and
// writes it in NSTR binary format.
//
// Usage:
//
//	tracegen -out trace.nstr [-seconds 3600] [-pps 424] [-seed 1993] [-trend 0]
//
// With default flags the output is the study's calibrated parent
// population: one hour, ≈424 packets/s, 400 µs capture clock.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	out := flag.String("out", "", "output trace file (required)")
	seconds := flag.Int("seconds", 3600, "trace duration in seconds")
	pps := flag.Float64("pps", 424, "target average packets per second")
	seed := flag.Uint64("seed", 0x53445343_1993, "generator seed")
	trend := flag.Float64("trend", 0, "linear load trend across the trace (e.g. 0.2 = +20%)")
	quiet := flag.Bool("q", false, "suppress the summary")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := traffgen.NSFNETHour()
	cfg.Seed = *seed
	cfg.Duration = time.Duration(*seconds) * time.Second
	cfg.TargetPPS = *pps
	cfg.Envelope.TrendPerHour = *trend

	tr, err := traffgen.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	if err := trace.Write(f, tr); err != nil {
		f.Close()
		log.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	if !*quiet {
		fmt.Printf("wrote %s: %d packets, %d bytes of traffic, %s span\n",
			*out, tr.Len(), tr.TotalBytes(), tr.Duration().Round(time.Second))
	}
}
