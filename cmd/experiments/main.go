// Command experiments regenerates every table and figure of the paper on
// the calibrated synthetic parent population and prints the results.
//
// Usage:
//
//	experiments [-in trace.nstr] [-only figure8] [-quick]
//	experiments -matrix [-seed 1993] [-k 10] [-quick] [-format csv]
//
// Without -in the calibrated hour trace is generated in memory (~1.5 M
// packets, a second or two). -quick substitutes a two-minute population
// for a fast smoke run. -only restricts output to one artifact id
// (table1..table3, figure1..figure11, sec5.1, sec5.2).
//
// -matrix runs the scenario × sampler characterization matrix instead
// of the paper suite: every traffgen preset scenario (ddos, flashcrowd,
// hhchurn, portscan, elephantmice) against every sampling method plus
// the adaptive controller, one cell per combination, each scored
// against the scenario's own population. The matrix ignores -in — each
// scenario is its own parent. With -quick, cells run over 30-second
// scenarios; the default is 2 minutes. Output is byte-identical across
// runs at the same seed in all formats.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"netsample/internal/experiment"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	in := flag.String("in", "", "NSTR trace to use as the parent population (default: generate)")
	only := flag.String("only", "", "render only the artifact with this id")
	quick := flag.Bool("quick", false, "use a 2-minute population for a fast run")
	format := flag.String("format", "text", "output format: text|csv|json")
	matrix := flag.Bool("matrix", false, "run the scenario × sampler matrix instead of the paper suite")
	seed := flag.Uint64("seed", 1993, "matrix RNG seed")
	k := flag.Int("k", 10, "matrix base sampling granularity")
	flag.Parse()

	if *matrix {
		dur := 2 * time.Minute
		if *quick {
			dur = 30 * time.Second
		}
		r, err := experiment.Matrix(*seed, dur, *k)
		if err != nil {
			log.Fatalf("matrix: %v", err)
		}
		if err := experiment.WriteAllFormat(os.Stdout, []experiment.Result{r}, *format); err != nil {
			log.Fatalf("render: %v", err)
		}
		return
	}

	var tr *trace.Trace
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			log.Fatalf("open: %v", ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	case *quick:
		tr, err = traffgen.Generate(traffgen.SmallTrace(12345))
	default:
		tr, err = traffgen.Hour()
	}
	if err != nil {
		log.Fatalf("population: %v", err)
	}

	results, err := experiment.All(tr)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if *only != "" {
		var filtered []experiment.Result
		for _, r := range results {
			if r.ID() == *only {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("no artifact with id %q", *only)
		}
		results = filtered
	}
	if err := experiment.WriteAllFormat(os.Stdout, results, *format); err != nil {
		log.Fatalf("render: %v", err)
	}
}
