// Command experiments regenerates every table and figure of the paper on
// the calibrated synthetic parent population and prints the results.
//
// Usage:
//
//	experiments [-in trace.nstr] [-only figure8] [-quick]
//
// Without -in the calibrated hour trace is generated in memory (~1.5 M
// packets, a second or two). -quick substitutes a two-minute population
// for a fast smoke run. -only restricts output to one artifact id
// (table1..table3, figure1..figure11, sec5.1, sec5.2).
package main

import (
	"flag"
	"log"
	"os"

	"netsample/internal/experiment"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	in := flag.String("in", "", "NSTR trace to use as the parent population (default: generate)")
	only := flag.String("only", "", "render only the artifact with this id")
	quick := flag.Bool("quick", false, "use a 2-minute population for a fast run")
	format := flag.String("format", "text", "output format: text|csv|json")
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			log.Fatalf("open: %v", ferr)
		}
		tr, err = trace.Read(f)
		f.Close()
	case *quick:
		tr, err = traffgen.Generate(traffgen.SmallTrace(12345))
	default:
		tr, err = traffgen.Hour()
	}
	if err != nil {
		log.Fatalf("population: %v", err)
	}

	results, err := experiment.All(tr)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if *only != "" {
		var filtered []experiment.Result
		for _, r := range results {
			if r.ID() == *only {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("no artifact with id %q", *only)
		}
		results = filtered
	}
	if err := experiment.WriteAllFormat(os.Stdout, results, *format); err != nil {
		log.Fatalf("render: %v", err)
	}
}
