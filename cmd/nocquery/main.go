// Command nocquery answers time-range queries from a snapshot store on
// disk — the offline counterpart of polling a live fleet. It replays
// the exact wire payloads nsd -store or noccollect -store persisted
// (internal/store) and folds them through the same exact-merge logic
// the live pipeline uses (pipeline.MergeWire), so a cold store answers
// the questions the NOC would ask the fleet: the heavy hitters over the
// last hour, the merged size/interarrival histograms, and the
// per-window φ-scores.
//
// Usage:
//
//	nocquery -store DIR [-from US -to US | -last 1h] [-node NAME]
//	         [-top 10] [-windows] [-hist] [-verify]
//
// Time bounds are on the store's own virtual clock (snapshot window
// ends, microseconds); -last measures back from the newest record, so
// "the last hour" means the last hour of traffic, independent of when
// the query runs. -verify recomputes the full Merkle chain first and
// refuses to answer from a store that fails it, naming the damaged
// segment and byte offset.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"netsample/internal/collect"
	"netsample/internal/pipeline"
	"netsample/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocquery: ")

	var (
		dir     = flag.String("store", "", "store directory to query (required)")
		fromUS  = flag.Int64("from", math.MinInt64, "range start, inclusive, in virtual-clock microseconds")
		toUS    = flag.Int64("to", math.MaxInt64, "range end, inclusive, in virtual-clock microseconds")
		last    = flag.Duration("last", 0, "query the trailing span of the store's virtual clock (e.g. 1h); overrides -from/-to")
		node    = flag.String("node", "", "only snapshots from this node")
		top     = flag.Int("top", pipeline.DefaultTopKReport, "heavy hitters to print")
		windows = flag.Bool("windows", false, "print one line per window (seq, bounds, φ-scores)")
		hist    = flag.Bool("hist", false, "print the merged histogram bins")
		verify  = flag.Bool("verify", false, "verify the full Merkle chain before answering")
	)
	flag.Parse()

	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *verify {
		if err := store.Verify(*dir); err != nil {
			log.Fatalf("verify failed: %v", err)
		}
		fmt.Println("store chain verified")
	}

	r, err := store.OpenReader(*dir)
	if err != nil {
		log.Fatal(err)
	}
	first, lastTS, ok := r.Bounds()
	if !ok {
		log.Fatal("store holds no records")
	}
	from, to := *fromUS, *toUS
	if *last > 0 {
		from, to = lastTS-last.Microseconds()+1, lastTS
	}
	fmt.Printf("store spans [%dus, %dus]; querying [%dus, %dus]\n", first, lastTS, from, to)

	snaps, err := r.Snapshots(from, to)
	if err != nil {
		log.Fatal(err)
	}
	if *node != "" {
		kept := snaps[:0]
		for _, s := range snaps {
			if s.Node == *node {
				kept = append(kept, s)
			}
		}
		snaps = kept
	}
	if len(snaps) == 0 {
		log.Fatal("no snapshots in range")
	}

	if *windows {
		for _, s := range snaps {
			fmt.Println(windowLine(s))
		}
	}

	m, err := pipeline.MergeWire(snaps, *top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d windows from %s over [%dus, %dus)\n",
		len(snaps), m.Node, m.WindowStartUS, m.WindowEndUS)
	fmt.Printf("  offered=%d processed=%d selected=%d dropped=%d\n",
		m.Offered, m.Processed, m.Selected, m.Dropped)
	fmt.Printf("  flows=%d packets=%d bytes=%d singletons=%d\n",
		m.FlowCounts.Flows, m.FlowCounts.Packets, m.FlowCounts.Bytes, m.FlowCounts.Singletons)
	if len(m.TopK) > 0 {
		fmt.Println("  heavy hitters (estimated packets, +max error):")
		for _, e := range m.TopK {
			fmt.Printf("    %-44s %12d (+%d)\n", flowKeyString(e.Key), e.Count, e.MaxError)
		}
	}
	printHist := func(label string, counts []uint64) {
		var total uint64
		nonzero := 0
		for _, c := range counts {
			total += c
			if c > 0 {
				nonzero++
			}
		}
		fmt.Printf("  %s histogram: %d bins (%d nonzero), %d selected\n",
			label, len(counts), nonzero, total)
		if *hist {
			for b, c := range counts {
				if c > 0 {
					fmt.Printf("    bin %4d: %d\n", b, c)
				}
			}
		}
	}
	printHist("size", m.SizeCounts)
	printHist("iat", m.IatCounts)
}

// flowKeyString renders a heavy-hitter key for the terminal. The
// pipeline packs its top-K keys as the 13-byte 5-tuple the shard
// builds (src IP, dst IP, little-endian ports, protocol); anything
// else — a foreign store, a truncated key — falls back to hex rather
// than spraying raw bytes at the terminal.
func flowKeyString(key string) string {
	if len(key) != 13 {
		return fmt.Sprintf("%x", key)
	}
	k := []byte(key)
	srcPort := uint16(k[8]) | uint16(k[9])<<8
	dstPort := uint16(k[10]) | uint16(k[11])<<8
	return fmt.Sprintf("%d.%d.%d.%d:%d > %d.%d.%d.%d:%d proto %d",
		k[0], k[1], k[2], k[3], srcPort,
		k[4], k[5], k[6], k[7], dstPort, k[12])
}

// windowLine renders one per-window summary with its φ-scores —
// φ-family metrics do not merge across windows (see MergeWire), so the
// per-window lines are where scores are reported.
func windowLine(s *collect.Snapshot) string {
	line := fmt.Sprintf("window %s/%d [%dus,%dus)", s.Node, s.Seq, s.WindowStartUS, s.WindowEndUS)
	if s.Final {
		line += " final"
	}
	line += fmt.Sprintf(": selected=%d flows=%d", s.Selected, s.FlowCounts.Flows)
	if s.SizeReport != nil {
		line += fmt.Sprintf(" phi[size]=%.4f", s.SizeReport.Phi)
	}
	if s.IatReport != nil {
		line += fmt.Sprintf(" phi[iat]=%.4f", s.IatReport.Phi)
	}
	return line
}
