// Command noccollect is the NOC-side collector: it polls one or more
// artsnode agents on a cycle (the backbone used 15 minutes; scale down
// with -interval for demonstrations), aggregates the reports
// backbone-wide, and prints a summary of each cycle.
//
// Usage:
//
//	noccollect -agents 127.0.0.1:4501,127.0.0.1:4502 [-interval 15s] [-cycles 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"netsample/internal/collect"
	"netsample/internal/packet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noccollect: ")

	agents := flag.String("agents", "", "comma-separated agent addresses (required)")
	interval := flag.Duration("interval", 15*time.Second, "poll cycle (15m on the real backbone)")
	cycles := flag.Int("cycles", 0, "number of cycles to run (0 = forever)")
	topN := flag.Int("top", 5, "matrix rows to print per cycle")
	flag.Parse()

	if *agents == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*agents, ",")
	c := collect.NewCollector()

	for cycle := 1; *cycles == 0 || cycle <= *cycles; cycle++ {
		start := time.Now() //nslint:allow noclock operator-facing wall-clock cycle timestamp in a CLI
		results := c.PollAll(addrs)
		view, err := collect.Aggregate(results)
		if err != nil {
			log.Fatalf("aggregate: %v", err)
		}
		fmt.Printf("--- cycle %d at %s (%d nodes, %d failed) ---\n",
			cycle, start.Format(time.TimeOnly), len(view.Nodes), len(view.Failed))
		for _, f := range view.Failed {
			fmt.Printf("  poll failed: %s: %v\n", f.Addr, f.Err)
		}
		fmt.Printf("  backbone packet total (scaled): %d\n", view.TotalPackets())

		// Protocol mix.
		var protoNames []string
		for p := range view.Protocols.Protos {
			protoNames = append(protoNames, p.String())
		}
		sort.Strings(protoNames)
		fmt.Printf("  protocols: %s\n", strings.Join(protoNames, " "))

		// Heaviest source-destination network pairs.
		pairs := view.Matrix.Pairs()
		if len(pairs) > *topN {
			pairs = pairs[:*topN]
		}
		for _, e := range pairs {
			fmt.Printf("  %15s -> %-15s %10d pkts %12d bytes\n",
				e.Pair.Src, e.Pair.Dst, e.Counters.Packets, e.Counters.Bytes)
		}

		// Port mix, by packet volume.
		type portRow struct {
			name string
			pkts uint64
		}
		var ports []portRow
		for p, cnt := range view.Ports.Ports {
			name := packet.PortName(p)
			if p == 0 {
				name = "other"
			}
			ports = append(ports, portRow{name, cnt.Packets})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].pkts > ports[j].pkts })
		var parts []string
		for _, pr := range ports {
			parts = append(parts, fmt.Sprintf("%s:%d", pr.name, pr.pkts))
		}
		fmt.Printf("  ports: %s\n", strings.Join(parts, " "))

		if *cycles != 0 && cycle == *cycles {
			break
		}
		time.Sleep(*interval)
	}
}
