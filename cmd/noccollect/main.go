// Command noccollect is the NOC-side collector: it polls one or more
// artsnode agents on a cycle (the backbone used 15 minutes; scale down
// with -interval for demonstrations), aggregates the reports
// backbone-wide, and prints a summary of each cycle.
//
// Usage:
//
//	noccollect -agents 127.0.0.1:4501,127.0.0.1:4502 [-interval 15s] [-cycles 4]
//	           [-retries 2] [-backoff 50ms] [-max-backoff 2s] [-jitter-seed 1]
//	           [-max-concurrent 8]
//
// Polls are retried with seeded-jitter exponential backoff; thanks to
// the ack-based cycle protocol a retried poll recovers the agent's
// pending cycle instead of losing or double-counting it.
//
// With -store, each cycle additionally polls every agent's latest
// pipeline window snapshot and appends it to an append-only segment
// store (internal/store), deduplicated by (node, seq) so overlapping
// cycles never double-record a window. Query the store with nocquery.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"netsample/internal/collect"
	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noccollect: ")

	agents := flag.String("agents", "", "comma-separated agent addresses (required)")
	interval := flag.Duration("interval", 15*time.Second, "poll cycle (15m on the real backbone)")
	cycles := flag.Int("cycles", 0, "number of cycles to run (0 = forever)")
	topN := flag.Int("top", 5, "matrix rows to print per cycle")
	retries := flag.Int("retries", 2, "extra poll attempts per agent after the first")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt)")
	maxBackoff := flag.Duration("max-backoff", 2*time.Second, "retry backoff cap")
	jitterSeed := flag.Uint64("jitter-seed", 1, "seed for retry jitter (deterministic schedules)")
	maxConcurrent := flag.Int("max-concurrent", collect.DefaultMaxConcurrent, "agents polled at once")
	storeDir := flag.String("store", "", "persist polled fleet snapshots to this store directory (append-only segment log)")
	storeSync := flag.Int("store-sync", store.DefaultSyncEvery, "store group commit: fsync once per this many snapshots")
	flag.Parse()

	if *agents == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*agents, ",")
	c := collect.NewCollector()
	c.Retries = *retries
	c.Backoff = *backoff
	c.MaxBackoff = *maxBackoff
	c.Jitter = dist.NewRNG(*jitterSeed)
	c.MaxConcurrent = *maxConcurrent

	var sw *store.Writer
	if *storeDir != "" {
		var err error
		sw, err = store.Open(*storeDir, store.Options{SyncEvery: *storeSync})
		if err != nil {
			log.Fatalf("store: %v", err)
		}
		defer func() {
			if err := sw.Close(); err != nil {
				log.Printf("store: %v", err)
			}
		}()
	}
	// lastSeq deduplicates persisted snapshots per node: an agent polled
	// faster than its window cadence keeps serving the same window, and
	// the store should hold each window once.
	lastSeq := make(map[string]uint64)

	for cycle := 1; *cycles == 0 || cycle <= *cycles; cycle++ {
		start := time.Now() //nslint:allow noclock operator-facing wall-clock cycle timestamp in a CLI
		results := c.PollAll(addrs)
		// An all-failed cycle is an outage to report, not a reason to
		// exit: the next cycle may find the agents back.
		view, err := collect.Aggregate(results)
		if err != nil {
			log.Printf("cycle %d: %v", cycle, err)
		}
		fmt.Printf("--- cycle %d at %s (%d nodes, %d failed) ---\n",
			cycle, start.Format(time.TimeOnly), len(view.Nodes), len(view.Failed))
		for _, f := range view.Failed {
			fmt.Printf("  poll failed: %s: %v\n", f.Addr, f.Err)
		}
		fmt.Printf("  backbone packet total (scaled): %d\n", view.TotalPackets())

		// Protocol mix.
		var protoNames []string
		for p := range view.Protocols.Protos {
			protoNames = append(protoNames, p.String())
		}
		sort.Strings(protoNames)
		fmt.Printf("  protocols: %s\n", strings.Join(protoNames, " "))

		// Heaviest source-destination network pairs.
		pairs := view.Matrix.Pairs()
		if len(pairs) > *topN {
			pairs = pairs[:*topN]
		}
		for _, e := range pairs {
			fmt.Printf("  %15s -> %-15s %10d pkts %12d bytes\n",
				e.Pair.Src, e.Pair.Dst, e.Counters.Packets, e.Counters.Bytes)
		}

		// Port mix, by packet volume.
		type portRow struct {
			name string
			pkts uint64
		}
		var ports []portRow
		for p, cnt := range view.Ports.Ports {
			name := packet.PortName(p)
			if p == 0 {
				name = "other"
			}
			ports = append(ports, portRow{name, cnt.Packets})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].pkts > ports[j].pkts })
		var parts []string
		for _, pr := range ports {
			parts = append(parts, fmt.Sprintf("%s:%d", pr.name, pr.pkts))
		}
		fmt.Printf("  ports: %s\n", strings.Join(parts, " "))

		if sw != nil {
			persistSnapshots(c, sw, addrs, lastSeq)
		}

		if *cycles != 0 && cycle == *cycles {
			break
		}
		time.Sleep(*interval)
	}
}

// persistSnapshots polls each agent's latest window snapshot and appends
// the new ones (by node and window sequence) to the store. A failed
// snapshot poll is reported and skipped — the report cycle above already
// retried the transport, and the next cycle will catch the window up.
func persistSnapshots(c *collect.Collector, sw *store.Writer, addrs []string, lastSeq map[string]uint64) {
	for _, addr := range addrs {
		snap, err := c.PollSnapshot(addr)
		if err != nil {
			log.Printf("snapshot poll %s: %v", addr, err)
			continue
		}
		if seen, ok := lastSeq[snap.Node]; ok && snap.Seq <= seen {
			continue
		}
		if err := sw.AppendSnapshot(snap); err != nil {
			log.Printf("store append %s: %v", snap.Node, err)
			continue
		}
		lastSeq[snap.Node] = snap.Seq
	}
}
