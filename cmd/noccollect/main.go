// Command noccollect is the NOC-side collector: it polls one or more
// artsnode agents on a cycle (the backbone used 15 minutes; scale down
// with -interval for demonstrations), aggregates the reports
// backbone-wide, and prints a summary of each cycle.
//
// Usage:
//
//	noccollect -agents 127.0.0.1:4501,127.0.0.1:4502 [-interval 15s] [-cycles 4]
//	           [-retries 2] [-backoff 50ms] [-max-backoff 2s] [-jitter-seed 1]
//	           [-max-concurrent 8]
//
// Polls are retried with seeded-jitter exponential backoff; thanks to
// the ack-based cycle protocol a retried poll recovers the agent's
// pending cycle instead of losing or double-counting it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"netsample/internal/collect"
	"netsample/internal/dist"
	"netsample/internal/packet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noccollect: ")

	agents := flag.String("agents", "", "comma-separated agent addresses (required)")
	interval := flag.Duration("interval", 15*time.Second, "poll cycle (15m on the real backbone)")
	cycles := flag.Int("cycles", 0, "number of cycles to run (0 = forever)")
	topN := flag.Int("top", 5, "matrix rows to print per cycle")
	retries := flag.Int("retries", 2, "extra poll attempts per agent after the first")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt)")
	maxBackoff := flag.Duration("max-backoff", 2*time.Second, "retry backoff cap")
	jitterSeed := flag.Uint64("jitter-seed", 1, "seed for retry jitter (deterministic schedules)")
	maxConcurrent := flag.Int("max-concurrent", collect.DefaultMaxConcurrent, "agents polled at once")
	flag.Parse()

	if *agents == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*agents, ",")
	c := collect.NewCollector()
	c.Retries = *retries
	c.Backoff = *backoff
	c.MaxBackoff = *maxBackoff
	c.Jitter = dist.NewRNG(*jitterSeed)
	c.MaxConcurrent = *maxConcurrent

	for cycle := 1; *cycles == 0 || cycle <= *cycles; cycle++ {
		start := time.Now() //nslint:allow noclock operator-facing wall-clock cycle timestamp in a CLI
		results := c.PollAll(addrs)
		// An all-failed cycle is an outage to report, not a reason to
		// exit: the next cycle may find the agents back.
		view, err := collect.Aggregate(results)
		if err != nil {
			log.Printf("cycle %d: %v", cycle, err)
		}
		fmt.Printf("--- cycle %d at %s (%d nodes, %d failed) ---\n",
			cycle, start.Format(time.TimeOnly), len(view.Nodes), len(view.Failed))
		for _, f := range view.Failed {
			fmt.Printf("  poll failed: %s: %v\n", f.Addr, f.Err)
		}
		fmt.Printf("  backbone packet total (scaled): %d\n", view.TotalPackets())

		// Protocol mix.
		var protoNames []string
		for p := range view.Protocols.Protos {
			protoNames = append(protoNames, p.String())
		}
		sort.Strings(protoNames)
		fmt.Printf("  protocols: %s\n", strings.Join(protoNames, " "))

		// Heaviest source-destination network pairs.
		pairs := view.Matrix.Pairs()
		if len(pairs) > *topN {
			pairs = pairs[:*topN]
		}
		for _, e := range pairs {
			fmt.Printf("  %15s -> %-15s %10d pkts %12d bytes\n",
				e.Pair.Src, e.Pair.Dst, e.Counters.Packets, e.Counters.Bytes)
		}

		// Port mix, by packet volume.
		type portRow struct {
			name string
			pkts uint64
		}
		var ports []portRow
		for p, cnt := range view.Ports.Ports {
			name := packet.PortName(p)
			if p == 0 {
				name = "other"
			}
			ports = append(ports, portRow{name, cnt.Packets})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].pkts > ports[j].pkts })
		var parts []string
		for _, pr := range ports {
			parts = append(parts, fmt.Sprintf("%s:%d", pr.name, pr.pkts))
		}
		fmt.Printf("  ports: %s\n", strings.Join(parts, " "))

		if *cycles != 0 && cycle == *cycles {
			break
		}
		time.Sleep(*interval)
	}
}
