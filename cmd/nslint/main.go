// Command nslint runs the netsample static-analysis rule set over module
// packages. It enforces the determinism invariants the reproduction
// depends on — no stdlib randomness outside internal/dist, no naked
// wall-clock reads, no cross-goroutine RNG sharing, no exact float
// comparisons, no silently dropped module errors — and, since v2, the
// concurrency and hot-path invariants of the streaming pipeline: fields
// touched by sync/atomic must be atomic everywhere (atomicfield) and
// 8-byte aligned under 32-bit layout (atomicalign), goroutines must be
// tied to a shutdown seam (waitstall), no blocking operation may run
// under a held mutex (mutexhold), and the transitive closure of every
// `//nslint:hotpath` function must be free of allocating constructs
// (hotalloc) — the static twin of the allocation-budget tests.
//
// Usage:
//
//	nslint [-json] [-rules list] pattern...
//	nslint -hotpaths pattern...
//
// Patterns follow go-tool convention: ./... for the whole module,
// ./internal/... for a subtree, ./internal/dist for one package.
// -hotpaths prints, instead of findings, the hot-path closure the
// hotalloc rule enforces: every function reachable from a
// `//nslint:hotpath` root through static calls and interface dispatch,
// with the root and the call edge that pulled it in.
// Exit status is 0 when clean, 1 when findings were reported, 2 on a
// usage or load error. Suppress a finding in place with
// `//nslint:allow <rule> <reason>` on the offending line or the line
// above; exclude a function from the hot closure with
// `//nslint:coldpath <reason>` on its declaration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"netsample/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("nslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	ruleList := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	hotpaths := fs.Bool("hotpaths", false, "print the //nslint:hotpath transitive closure instead of findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nslint [-json] [-rules list] [-hotpaths] pattern...\n\nrules:\n")
		for _, r := range analysis.DefaultRules("netsample") {
			fmt.Fprintf(stderr, "  %-10s %s\n", r.Name(), r.Doc())
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "nslint: %v\n", err)
		return 2
	}
	rules := analysis.DefaultRules(loader.ModulePath)
	if *ruleList != "" {
		rules, err = selectRules(rules, *ruleList)
		if err != nil {
			fmt.Fprintf(stderr, "nslint: %v\n", err)
			return 2
		}
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "nslint: %v\n", err)
		return 2
	}
	if *hotpaths {
		printHotpaths(stdout, analysis.NewModule(pkgs))
		return 0
	}
	diags := analysis.Run(pkgs, rules)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "nslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, rel(loader.ModuleRoot, d))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printHotpaths renders the hot-path closure, one function per line,
// in the deterministic BFS order of HotClosure: roots flush left, every
// pulled-in function indented with the root it serves and the call edge
// that discovered it.
func printHotpaths(stdout *os.File, m *analysis.Module) {
	entries := m.HotClosure()
	if len(entries) == 0 {
		fmt.Fprintln(stdout, "no //nslint:hotpath roots in the loaded packages")
		return
	}
	for _, e := range entries {
		if e.Via == nil {
			fmt.Fprintf(stdout, "%s (root)\n", e.Func.FullName())
			continue
		}
		fmt.Fprintf(stdout, "  %s (from %s via %s)\n",
			e.Func.FullName(), e.Root.Obj.Name(), e.Via.Obj.Name())
	}
}

// selectRules filters the rule set down to the named subset.
func selectRules(all []analysis.Rule, list string) ([]analysis.Rule, error) {
	byName := make(map[string]analysis.Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []analysis.Rule
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, r)
	}
	return out, nil
}

// rel shortens absolute file paths to module-relative ones for readable
// terminal output.
func rel(root string, d analysis.Diagnostic) string {
	if strings.HasPrefix(d.File, root+string(os.PathSeparator)) {
		d.File = d.File[len(root)+1:]
	}
	return d.String()
}
