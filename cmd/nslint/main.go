// Command nslint runs the netsample static-analysis rule set over module
// packages. It enforces the determinism and concurrency invariants the
// reproduction depends on: no stdlib randomness outside internal/dist,
// no naked wall-clock reads, no cross-goroutine RNG sharing, no exact
// float comparisons, no silently dropped module errors.
//
// Usage:
//
//	nslint [-json] [-rules list] pattern...
//
// Patterns follow go-tool convention: ./... for the whole module,
// ./internal/... for a subtree, ./internal/dist for one package.
// Exit status is 0 when clean, 1 when findings were reported, 2 on a
// usage or load error. Suppress a finding in place with
// `//nslint:allow <rule> <reason>` on the offending line or the line
// above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"netsample/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("nslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	ruleList := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nslint [-json] [-rules list] pattern...\n\nrules:\n")
		for _, r := range analysis.DefaultRules("netsample") {
			fmt.Fprintf(stderr, "  %-10s %s\n", r.Name(), r.Doc())
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "nslint: %v\n", err)
		return 2
	}
	rules := analysis.DefaultRules(loader.ModulePath)
	if *ruleList != "" {
		rules, err = selectRules(rules, *ruleList)
		if err != nil {
			fmt.Fprintf(stderr, "nslint: %v\n", err)
			return 2
		}
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "nslint: %v\n", err)
		return 2
	}
	diags := analysis.Run(pkgs, rules)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "nslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, rel(loader.ModuleRoot, d))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectRules filters the rule set down to the named subset.
func selectRules(all []analysis.Rule, list string) ([]analysis.Rule, error) {
	byName := make(map[string]analysis.Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []analysis.Rule
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, r)
	}
	return out, nil
}

// rel shortens absolute file paths to module-relative ones for readable
// terminal output.
func rel(root string, d analysis.Diagnostic) string {
	if strings.HasPrefix(d.File, root+string(os.PathSeparator)) {
		d.File = d.File[len(root)+1:]
	}
	return d.String()
}
