// Command sample applies one of the paper's five sampling methods to an
// NSTR trace and writes the sampled sub-trace (and, optionally, the
// selected indices).
//
// Usage:
//
//	sample -in trace.nstr -out sampled.nstr -method systematic -k 50 [-offset 0] [-seed 1]
//
// Methods: systematic, stratified, random, systematic-timer,
// stratified-timer. For timer methods -k chooses the period as k times
// the trace's mean interarrival time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sample: ")

	in := flag.String("in", "", "input NSTR trace (required)")
	out := flag.String("out", "", "output NSTR trace of selected packets (required)")
	method := flag.String("method", "systematic", "systematic|stratified|random|systematic-timer|stratified-timer")
	k := flag.Int("k", 50, "sampling granularity (1/fraction)")
	offset := flag.Int("offset", 0, "systematic start offset")
	seed := flag.Uint64("seed", 1, "seed for the random methods")
	flag.Parse()

	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		log.Fatalf("read: %v", err)
	}

	sampler, err := buildSampler(*method, tr, *k, *offset)
	if err != nil {
		log.Fatalf("%v", err)
	}
	idx, err := sampler.Select(tr, dist.NewRNG(*seed))
	if err != nil {
		log.Fatalf("select: %v", err)
	}

	sub := &trace.Trace{Start: tr.Start, ClockUS: tr.ClockUS}
	for _, i := range idx {
		sub.Packets = append(sub.Packets, tr.Packets[i])
	}
	g, err := os.Create(*out)
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	if err := trace.Write(g, sub); err != nil {
		g.Close()
		log.Fatalf("write: %v", err)
	}
	if err := g.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	fmt.Printf("%s: selected %d of %d packets (fraction %.5f)\n",
		sampler.Name(), len(idx), tr.Len(), float64(len(idx))/float64(tr.Len()))
}

// buildSampler constructs the requested method.
func buildSampler(method string, tr *trace.Trace, k, offset int) (core.Sampler, error) {
	switch method {
	case "systematic":
		return core.SystematicCount{K: k, Offset: offset}, nil
	case "stratified":
		return core.StratifiedCount{K: k}, nil
	case "random":
		return core.SimpleRandom{K: k}, nil
	case "systematic-timer":
		return core.NewSystematicTimer(tr, float64(k), 0)
	case "stratified-timer":
		return core.NewStratifiedTimer(tr, float64(k))
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}
