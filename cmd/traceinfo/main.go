// Command traceinfo summarizes a trace file: the Table 2 per-second
// rows, the Table 3 population rows, and the protocol/port composition.
// It reads NSTR natively and libpcap (raw-IP, little-endian) with
// -format pcap, and can convert between the two with -convert.
//
// Usage:
//
//	traceinfo -in trace.nstr
//	traceinfo -in capture.pcap -format pcap
//	traceinfo -in trace.nstr -convert out.pcap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"netsample/internal/experiment"
	"netsample/internal/flows"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")

	in := flag.String("in", "", "input trace (required)")
	format := flag.String("format", "nstr", "input format: nstr|pcap")
	convert := flag.String("convert", "", "write the trace to this path in the other format")
	showFlows := flag.Bool("flows", false, "also print a 5-tuple flow summary")
	flowTimeout := flag.Duration("flow-timeout", 2*time.Second, "flow idle timeout")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	var tr *trace.Trace
	switch *format {
	case "nstr":
		tr, err = trace.Read(f)
	case "pcap":
		tr, err = trace.ReadPcap(f)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		log.Fatalf("read: %v", err)
	}

	if *convert != "" {
		g, err := os.Create(*convert)
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		if *format == "nstr" {
			err = trace.WritePcap(g, tr)
		} else {
			err = trace.Write(g, tr)
		}
		if cerr := g.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("convert: %v", err)
		}
		fmt.Printf("converted %d packets to %s\n", tr.Len(), *convert)
	}

	t2, err := experiment.Table2(tr)
	if err != nil {
		log.Fatalf("summary: %v", err)
	}
	if err := t2.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	t3, err := experiment.Table3(tr)
	if err != nil {
		log.Fatalf("summary: %v", err)
	}
	if err := t3.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Composition.
	protoPkts := map[packet.Protocol]int{}
	portPkts := map[string]int{}
	for _, p := range tr.Packets {
		protoPkts[p.Protocol]++
		if p.Protocol == packet.ProtoTCP || p.Protocol == packet.ProtoUDP {
			name := packet.PortName(p.DstPort)
			if name == "other" {
				name = packet.PortName(p.SrcPort)
			}
			portPkts[name]++
		}
	}
	fmt.Println()
	fmt.Println("protocol composition:")
	type row struct {
		name string
		n    int
	}
	var rows []row
	for pr, n := range protoPkts {
		rows = append(rows, row{pr.String(), n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		fmt.Printf("  %-8s %9d (%5.1f%%)\n", r.name, r.n, 100*float64(r.n)/float64(tr.Len()))
	}
	rows = rows[:0]
	for name, n := range portPkts {
		rows = append(rows, row{name, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	var parts []string
	for _, r := range rows {
		parts = append(parts, fmt.Sprintf("%s:%d", r.name, r.n))
	}
	fmt.Printf("well-known ports: %s\n", strings.Join(parts, " "))

	if *showFlows {
		fs, err := flows.Decompose(tr, flowTimeout.Microseconds())
		if err != nil {
			log.Fatalf("flows: %v", err)
		}
		sum := flows.Summarize(fs)
		fmt.Println()
		fmt.Printf("flows (idle timeout %s): %d total, mean %.1f pkts / %.0f bytes, %.1f%% singletons\n",
			flowTimeout, sum.Flows, sum.MeanPackets, sum.MeanBytes, 100*sum.SingletonShare)
		sort.Slice(fs, func(i, j int) bool { return fs[i].Packets > fs[j].Packets })
		fmt.Println("largest flows:")
		for i := 0; i < 5 && i < len(fs); i++ {
			fl := fs[i]
			fmt.Printf("  %15s:%-5d -> %15s:%-5d %-5s %8d pkts %10d bytes\n",
				fl.Key.Src, fl.Key.SrcPort, fl.Key.Dst, fl.Key.DstPort,
				fl.Key.Proto, fl.Packets, fl.Bytes)
		}
	}
}
