// Command phieval scores a sampling method against a trace's full
// population for one target distribution, printing every Section 5.2
// disparity metric (χ², significance, cost, rcost, X², k, φ).
//
// Usage:
//
//	phieval -in trace.nstr -method stratified -k 50 -target size [-reps 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phieval: ")

	in := flag.String("in", "", "input NSTR trace (required)")
	method := flag.String("method", "systematic", "systematic|stratified|random|systematic-timer|stratified-timer")
	k := flag.Int("k", 50, "sampling granularity (1/fraction)")
	target := flag.String("target", "size", "size|interarrival")
	reps := flag.Int("reps", 5, "replications (systematic varies the offset)")
	seed := flag.Uint64("seed", 1, "seed for the random methods")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		log.Fatalf("read: %v", err)
	}

	var tgt core.Target
	var scheme bins.Scheme
	switch *target {
	case "size":
		tgt, scheme = core.TargetSize, bins.PacketSize()
	case "interarrival":
		tgt, scheme = core.TargetInterarrival, bins.Interarrival()
	default:
		log.Fatalf("unknown target %q", *target)
	}

	ev, err := core.NewEvaluator(tr, tgt, scheme)
	if err != nil {
		log.Fatalf("evaluator: %v", err)
	}
	r := dist.NewRNG(*seed)

	var replications []core.Replication
	switch *method {
	case "systematic":
		replications, err = core.SystematicOffsets(ev, *k, *reps, r)
	case "stratified":
		replications, err = core.Replicate(ev, core.StratifiedCount{K: *k}, *reps, r)
	case "random":
		replications, err = core.Replicate(ev, core.SimpleRandom{K: *k}, *reps, r)
	case "systematic-timer":
		var s core.SystematicTimer
		s, err = core.NewSystematicTimer(tr, float64(*k), 0)
		if err == nil {
			replications, err = core.Replicate(ev, s, 1, r)
		}
	case "stratified-timer":
		var s core.StratifiedTimer
		s, err = core.NewStratifiedTimer(tr, float64(*k))
		if err == nil {
			replications, err = core.Replicate(ev, s, *reps, r)
		}
	default:
		log.Fatalf("unknown method %q", *method)
	}
	if err != nil {
		log.Fatalf("sampling: %v", err)
	}

	fmt.Printf("method=%s target=%s k=%d population=%d\n", *method, tgt, *k, tr.Len())
	fmt.Printf("%4s %9s %12s %8s %12s %12s %10s %10s %10s\n",
		"rep", "n", "chi2", "sig", "cost", "rcost", "X2", "k", "phi")
	for i, rep := range replications {
		fmt.Printf("%4d %9d %12.2f %8.4f %12.0f %12.2f %10.6f %10.6f %10.6f\n",
			i, rep.SampleSize, rep.Report.ChiSquare, rep.Report.Significance,
			rep.Report.Cost, rep.Report.RelativeCost, rep.Report.PaxsonX2,
			rep.Report.AvgNormDev, rep.Report.Phi)
	}
	fmt.Printf("mean phi: %.6f\n", core.MeanPhi(replications))
}
