module netsample

go 1.22
