// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per artifact, reporting key numbers as benchmark metrics),
// the DESIGN.md §6 ablation studies, and micro-benchmarks of the hot
// paths (sampling, scoring, trace codec, generation).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package netsample

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/experiment"
	"netsample/internal/flows"
	"netsample/internal/metrics"
	"netsample/internal/nnstat"
	"netsample/internal/online"
	"netsample/internal/pipeline"
	"netsample/internal/snmp"
	"netsample/internal/stats"
	"netsample/internal/store"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// benchHour returns the shared calibrated hour population, generating it
// once per process.
func benchHour(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := traffgen.Hour()
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

var (
	benchSmallOnce sync.Once
	benchSmallTr   *trace.Trace
	benchSmallErr  error
)

// benchSmall returns a shared 2-minute population for the heavier
// parameter sweeps.
func benchSmall(b *testing.B) *trace.Trace {
	b.Helper()
	benchSmallOnce.Do(func() {
		benchSmallTr, benchSmallErr = traffgen.Generate(traffgen.SmallTrace(777))
	})
	if benchSmallErr != nil {
		b.Fatal(benchSmallErr)
	}
	return benchSmallTr
}

// --- one benchmark per table/figure --------------------------------------------

func BenchmarkTable1Objects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Table1()
		if len(r.Objects) != 7 {
			b.Fatal("wrong object count")
		}
	}
}

func BenchmarkTable2PerSecond(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table2(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[0].Mean, "pps-mean")
			b.ReportMetric(r.Rows[0].StdDev, "pps-stddev")
		}
	}
}

func BenchmarkTable3Population(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table3(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Size.Mean, "size-mean")
			b.ReportMetric(r.Interarrival.Mean, "iat-mean-us")
		}
	}
}

func BenchmarkFigure1Discrepancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure1(30, 20, 800)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pre := r.Points[19]
			b.ReportMetric(100*(1-float64(pre.NNStat)/float64(pre.SNMP)), "peak-shortfall-%")
		}
	}
}

func BenchmarkFigure3Metrics(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure3(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Points[len(r.Points)-1].Report.Phi, "phi-at-32768")
		}
	}
}

func BenchmarkFigure4SizeHist(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure4(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5IatHist(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure5(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Boxplots(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure6(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := r.Rows[len(r.Rows)-1].Box
			b.ReportMetric(last.Median, "phi-median-at-32768")
		}
	}
}

func BenchmarkFigure7Means(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure7(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Methods(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure8(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportClassGap(b, r)
		}
	}
}

func BenchmarkFigure9MethodsIat(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure9(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportClassGap(b, r)
		}
	}
}

// reportClassGap reports mean φ per trigger class over the coarse half
// of the grid — the paper's packet-vs-timer comparison.
func reportClassGap(b *testing.B, r *experiment.MethodsFigureResult) {
	var pSum, tSum float64
	var pN, tN int
	half := len(r.Granularities) / 2
	for _, s := range r.Series {
		for _, v := range s.Means[half:] {
			if strings.HasSuffix(s.Method, "/timer") {
				tSum += v
				tN++
			} else {
				pSum += v
				pN++
			}
		}
	}
	b.ReportMetric(pSum/float64(pN), "phi-packet-class")
	b.ReportMetric(tSum/float64(tN), "phi-timer-class")
}

func BenchmarkFigure10Elapsed(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure10(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := r.Means[1] // granularity 256
			b.ReportMetric(row[0], "phi-1min")
			b.ReportMetric(row[len(row)-1], "phi-60min")
		}
	}
}

func BenchmarkFigure11ElapsedIat(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure11(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleSize(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.SampleSizes(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Rows[0].N), "n-size-5pct")
			b.ReportMetric(float64(r.Rows[2].N), "n-iat-5pct")
		}
	}
}

func BenchmarkChiSquareReplications(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ChiSquareAcceptance(tr, core.TargetSize)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Rejected), "rejected-of-50")
		}
	}
}

// --- ablation benches (DESIGN.md §6) --------------------------------------------

// BenchmarkAblationBins compares the paper's hand-chosen size bins to
// equal-width and quantile binning: does the method ranking change?
func BenchmarkAblationBins(b *testing.B) {
	tr := benchSmall(b)
	sizes := tr.Sizes()
	quantEdges, err := quantileInteriorEdges(sizes, 5)
	if err != nil {
		b.Fatal(err)
	}
	schemes := map[string]bins.Scheme{}
	paper := bins.PacketSize()
	schemes["paper"] = paper
	eq, err := bins.NewEdged("equal-width", []float64{300, 600, 900, 1200})
	if err != nil {
		b.Fatal(err)
	}
	schemes["equal-width"] = eq
	qs, err := bins.NewEdged("quantile", quantEdges)
	if err != nil {
		b.Fatal(err)
	}
	schemes["quantile"] = qs

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, scheme := range schemes {
			ev, err := core.NewEvaluator(tr, core.TargetSize, scheme)
			if err != nil {
				b.Fatal(err)
			}
			idx, err := core.SystematicCount{K: 256}.Select(tr, nil)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := ev.Score(idx)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(rep.Phi, "phi-"+name)
			}
		}
	}
}

// quantileInteriorEdges derives interior bin edges at the k-quantiles of
// xs, collapsing duplicates (packet sizes are heavily tied at 40/552).
func quantileInteriorEdges(xs []float64, nbins int) ([]float64, error) {
	var edges []float64
	for i := 1; i < nbins; i++ {
		q, err := stats.Quantile(xs, float64(i)/float64(nbins))
		if err != nil {
			return nil, err
		}
		if len(edges) == 0 || q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	return edges, nil
}

// BenchmarkAblationTimerEdge quantifies the paper's "seemingly
// inconsequential" approximation: selecting the next arrival after a
// tick vs the most recent arrival before it.
func BenchmarkAblationTimerEdge(b *testing.B) {
	tr := benchSmall(b)
	ev, err := core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival())
	if err != nil {
		b.Fatal(err)
	}
	period, err := core.PeriodForGranularity(tr, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prev := range []bool{false, true} {
			s := core.SystematicTimer{PeriodUS: period, SelectPrevious: prev}
			idx, err := s.Select(tr, nil)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := ev.Score(idx)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				name := "phi-next-arrival"
				if prev {
					name = "phi-prev-arrival"
				}
				b.ReportMetric(rep.Phi, name)
			}
		}
	}
}

// BenchmarkAblationReplications measures how the spread of φ estimates
// shrinks as the replication count grows (the paper used 5).
func BenchmarkAblationReplications(b *testing.B) {
	tr := benchSmall(b)
	ev, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		b.Fatal(err)
	}
	r := dist.NewRNG(4242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, reps := range []int{2, 5, 20} {
			rs, err := core.Replicate(ev, core.StratifiedCount{K: 512}, reps, r)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				phis := core.PhiValues(rs)
				lo, hi := phis[0], phis[0]
				for _, v := range phis {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				b.ReportMetric(hi-lo, "phi-range-"+strconv.Itoa(reps))
			}
		}
	}
}

// BenchmarkAblationStratifiedJitter contrasts stratified (random within
// bucket) with systematic (fixed position within bucket) at the same
// fraction — the §5 theory on populations with patterns.
func BenchmarkAblationStratifiedJitter(b *testing.B) {
	tr := benchSmall(b)
	ev, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		b.Fatal(err)
	}
	r := dist.NewRNG(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sysReps, err := core.SystematicOffsets(ev, 512, 5, r)
		if err != nil {
			b.Fatal(err)
		}
		strReps, err := core.Replicate(ev, core.StratifiedCount{K: 512}, 5, r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(core.MeanPhi(sysReps), "phi-fixed")
			b.ReportMetric(core.MeanPhi(strReps), "phi-jittered")
		}
	}
}

// BenchmarkAblationTrend compares systematic vs stratified sampling on a
// stationary population and one with a strong linear load trend — the
// Section 5 prediction that a trend favors stratified random sampling.
func BenchmarkAblationTrend(b *testing.B) {
	flat := traffgen.SmallTrace(31)
	trended := traffgen.SmallTrace(31)
	trended.Envelope.TrendPerHour = 1.5
	trFlat, err := traffgen.Generate(flat)
	if err != nil {
		b.Fatal(err)
	}
	trTrend, err := traffgen.Generate(trended)
	if err != nil {
		b.Fatal(err)
	}
	r := dist.NewRNG(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, tr := range map[string]*trace.Trace{"flat": trFlat, "trend": trTrend} {
			ev, err := core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival())
			if err != nil {
				b.Fatal(err)
			}
			sys, err := core.SystematicOffsets(ev, 128, 5, r)
			if err != nil {
				b.Fatal(err)
			}
			str, err := core.Replicate(ev, core.StratifiedCount{K: 128}, 5, r)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(core.MeanPhi(sys), "phi-sys-"+name)
				b.ReportMetric(core.MeanPhi(str), "phi-str-"+name)
			}
		}
	}
}

// --- micro-benchmarks -------------------------------------------------------------

func BenchmarkGenerateSmallTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := traffgen.Generate(traffgen.SmallTrace(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkSystematicSelect(b *testing.B) {
	tr := benchSmall(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.SystematicCount{K: 50}).Select(tr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStratifiedSelect(b *testing.B) {
	tr := benchSmall(b)
	r := dist.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.StratifiedCount{K: 50}).Select(tr, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimpleRandomSelect(b *testing.B) {
	tr := benchSmall(b)
	r := dist.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.SimpleRandom{K: 50}).Select(tr, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimerSelect(b *testing.B) {
	tr := benchSmall(b)
	s, err := core.NewSystematicTimer(tr, 50, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select(tr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorScore(b *testing.B) {
	tr := benchSmall(b)
	ev, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		b.Fatal(err)
	}
	idx, err := core.SystematicCount{K: 50}.Select(tr, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Score(idx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusedReplication measures the fully fused path: streaming
// systematic selection feeding a worker-local Scorer, the loop the
// figure sweeps run thousands of times. Steady-state this is 0 allocs/op
// (pinned by TestReplicationScoringZeroAllocs).
func BenchmarkFusedReplication(b *testing.B) {
	tr := benchSmall(b)
	ev, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		b.Fatal(err)
	}
	sc := ev.NewScorer()
	visit := sc.Visit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		if err := (core.SystematicCount{K: 50, Offset: i % 50}).SelectEach(tr, nil, visit); err != nil {
			b.Fatal(err)
		}
		if _, err := sc.Report(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicateParallelFused measures worker-pool replication of a
// random method over the fused path, the ReplicateParallel hot loop.
func BenchmarkReplicateParallelFused(b *testing.B) {
	tr := benchSmall(b)
	ev, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReplicateParallel(ev, core.SimpleRandom{K: 50}, 32, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhiMetric(b *testing.B) {
	o := []float64{120, 330, 550}
	e := []float64{130, 320, 550}
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Phi(o, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceCodec(b *testing.B) {
	tr := benchSmall(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(24 * tr.Len()))
}

// --- extension artifact benches ------------------------------------------------

func BenchmarkExtPorts(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtPorts(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Means[len(r.Means)-1], "phi-at-8192")
		}
	}
}

func BenchmarkExtMatrix(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ExtMatrix(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Cells), "matrix-cells")
			b.ReportMetric(r.Means[len(r.Means)-1], "phi-at-8192")
		}
	}
}

func BenchmarkSec5Theory(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Theory(tr, core.TargetSize)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[2].Ratio, "variance-ratio-k50")
		}
	}
}

func BenchmarkExtAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Adaptive()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.Config == "adaptive" {
					b.ReportMetric(100*row.RelError, "adaptive-error-%")
					b.ReportMetric(row.MeanK, "adaptive-mean-k")
				}
			}
		}
	}
}

// --- additional micro-benchmarks --------------------------------------------------

func BenchmarkPcapCodec(b *testing.B) {
	tr := benchSmall(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.WritePcap(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadPcap(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReservoirAdd(b *testing.B) {
	r, err := online.NewReservoir(1024, dist.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	p := trace.Packet{Size: 552}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(p)
	}
}

func BenchmarkStreamingSystematicOffer(b *testing.B) {
	s, err := online.NewSystematic(50, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(int64(i))
	}
}

func BenchmarkEstimateMean(b *testing.B) {
	tr := benchSmall(b)
	idx, err := core.SystematicCount{K: 50}.Select(tr, nil)
	if err != nil {
		b.Fatal(err)
	}
	obs := core.Observations(tr, core.TargetSize, idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMean(obs, tr.Len(), 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtArtsHist(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.ArtsHist(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Phis[1], "phi-at-50")
		}
	}
}

func BenchmarkExtFlows(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.FlowBias(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.DetectedFrac[2], "detected-frac-at-50")
			b.ReportMetric(r.MeanPktsScale[2], "size-bias-at-50")
		}
	}
}

func BenchmarkExtHeavyHitters(b *testing.B) {
	tr := benchHour(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.HeavyHitters(tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Overlap[2], "top10-overlap-at-50")
		}
	}
}

func BenchmarkFlowTableAdd(b *testing.B) {
	tr := benchSmall(b)
	tab, err := flows.NewTable(2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Add(tr.Packets[i%tr.Len()])
	}
}

func BenchmarkTopKAdd(b *testing.B) {
	tk, err := nnstat.NewTopK(256)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	r := dist.NewRNG(1)
	for i := range keys {
		keys[i] = strconv.Itoa(r.IntN(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Add(keys[i%len(keys)], 1)
	}
}

func BenchmarkP2Add(b *testing.B) {
	p, err := stats.NewP2(0.5)
	if err != nil {
		b.Fatal(err)
	}
	r := dist.NewRNG(2)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Add(xs[i%len(xs)])
	}
}

func BenchmarkSNMPLoopbackGet(b *testing.B) {
	a := snmp.NewAgent()
	if err := a.Register("c", func() uint64 { return 1 }); err != nil {
		b.Fatal(err)
	}
	addr, err := a.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	m := snmp.NewManager()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Get(addr.String(), "c"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClock quantifies the capture-clock effect the paper
// inherits from its 400 µs instrumentation: the same traffic quantized
// at finer and coarser clocks, scored on the interarrival target at a
// fixed fraction. Clocks coarser than ~1 ms leave the paper's
// 800-1199 us bin structurally empty (the evaluator rejects them), so
// the sweep stays inside the bins' validity range - itself the
// ablation's first finding.
func BenchmarkAblationClock(b *testing.B) {
	clocks := []int64{1, 100, 400}
	traces := make(map[int64]*trace.Trace)
	for _, c := range clocks {
		cfg := traffgen.SmallTrace(4004)
		cfg.ClockUS = c
		tr, err := traffgen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		traces[c] = tr
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range clocks {
			tr := traces[c]
			ev, err := core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival())
			if err != nil {
				b.Fatal(err)
			}
			reps, err := core.SystematicOffsets(ev, 64, 5, dist.NewRNG(1))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(core.MeanPhi(reps), "phi-clock-"+strconv.FormatInt(c, 10)+"us")
			}
		}
	}
}

// BenchmarkSelectByGranularity measures selection throughput per method
// across granularities, as sub-benchmarks.
func BenchmarkSelectByGranularity(b *testing.B) {
	tr := benchSmall(b)
	for _, k := range []int{10, 100, 1000} {
		k := k
		b.Run("systematic/k="+strconv.Itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (core.SystematicCount{K: k}).Select(tr, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(tr.Len()))
		})
		b.Run("stratified/k="+strconv.Itoa(k), func(b *testing.B) {
			r := dist.NewRNG(uint64(k))
			for i := 0; i < b.N; i++ {
				if _, err := (core.StratifiedCount{K: k}).Select(tr, r); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(tr.Len()))
		})
		b.Run("random/k="+strconv.Itoa(k), func(b *testing.B) {
			r := dist.NewRNG(uint64(k))
			for i := 0; i < b.N; i++ {
				if _, err := (core.SimpleRandom{K: k}).Select(tr, r); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(tr.Len()))
		})
	}
}

// writeBenchTrace serializes tr to a temp NSTR file for the mmap
// benchmarks and returns the path.
func writeBenchTrace(b *testing.B, tr *trace.Trace) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.nstr")
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkDecodeBatch measures the fused raw ingest kernel — decode +
// shard hash + gap stamp over a whole window of NSTR records in one
// pass. One op = one record.
func BenchmarkDecodeBatch(b *testing.B) {
	tr := benchSmall(b)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()[trace.HeaderLen:]
	nrec := len(raw) / trace.RecordLen
	const batch = 256
	pkts := make([]trace.Packet, batch)
	shards := make([]uint8, batch)
	gaps := make([]int64, batch)
	b.SetBytes(trace.RecordLen)
	b.ReportAllocs()
	b.ResetTimer()
	pos, prev := 0, int64(0)
	for done := 0; done < b.N; {
		n := batch
		if left := nrec - pos; left < n {
			if left == 0 {
				pos, prev = 0, 0
				continue
			}
			n = left
		}
		k := pipeline.DecodeBatch(pkts[:n], shards[:n], gaps[:n],
			raw[pos*trace.RecordLen:(pos+n)*trace.RecordLen], prev, 4)
		prev = pkts[k-1].Time
		pos += k
		done += k
	}
}

// BenchmarkMapReaderThroughput measures the zero-copy reader end to
// end: raw windows handed out of the mapped region and decoded from the
// view in one DecodeRecords pass. One op = one record.
func BenchmarkMapReaderThroughput(b *testing.B) {
	tr := benchSmall(b)
	path := writeBenchTrace(b, tr)
	mr, err := trace.OpenMap(path)
	if err != nil {
		b.Fatal(err)
	}
	defer mr.Close()
	dst := make([]trace.Packet, 512)
	b.SetBytes(trace.RecordLen)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n, err := mr.NextBatch(dst)
		if err == io.EOF {
			mr.Rewind()
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		done += n
	}
}

// mapLoop cycles an mmap'd trace, yielding exactly n records — the
// zero-copy analogue of an endless capture stream. Its raw windows
// alias the mapping, which stays valid until Close, so it satisfies
// pipeline.RawBatchSource even across Rewind laps.
type mapLoop struct {
	mr  *trace.MapReader
	n   int
	pos int
}

func (m *mapLoop) Next() (trace.Packet, error) {
	if m.pos >= m.n {
		return trace.Packet{}, io.EOF
	}
	p, err := m.mr.Next()
	if err == io.EOF {
		m.mr.Rewind()
		p, err = m.mr.Next()
	}
	if err != nil {
		return trace.Packet{}, err
	}
	m.pos++
	return p, nil
}

func (m *mapLoop) NextRawBatch(max int) ([]byte, int, error) {
	if m.pos >= m.n {
		return nil, 0, io.EOF
	}
	if left := m.n - m.pos; left < max {
		max = left
	}
	raw, k, err := m.mr.NextRawBatch(max)
	if err == io.EOF {
		m.mr.Rewind()
		raw, k, err = m.mr.NextRawBatch(max)
	}
	if err != nil {
		return nil, 0, err
	}
	m.pos += k
	return raw, k, nil
}

// BenchmarkPipelineThroughput measures the streaming pipeline's
// end-to-end packet rate (ingest → shard → sample → aggregate) by shard
// count, with one benchmark op = one packet. The pipeline is fed
// through the zero-copy raw path: an mmap'd trace cycled by mapLoop,
// decoded inside the parallel ingest workers. The reader goroutine only
// peeks timestamps; allocs/op near zero is the hot-path guarantee
// (pinned exactly by TestMapReaderHotPathAllocs).
func BenchmarkPipelineThroughput(b *testing.B) {
	tr := benchSmall(b)
	path := writeBenchTrace(b, tr)
	for _, shards := range []int{1, 2, 4} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			p, err := pipeline.New(pipeline.Config{
				Shards: shards,
				// Scale the parallel hash/fan-out stage with the shards: one
				// worker keeps up with up to two shards.
				IngestWorkers: (shards + 1) / 2,
				NewSampler: func(int) (online.Sampler, error) {
					return online.NewSystematic(50, 0)
				},
				// Flows from the cycled trace never expire mid-run, so the
				// flow table reaches steady state after the first lap.
				FlowTimeoutUS: 1 << 60,
			})
			if err != nil {
				b.Fatal(err)
			}
			mr, err := trace.OpenMap(path)
			if err != nil {
				b.Fatal(err)
			}
			defer mr.Close()
			src := &mapLoop{mr: mr, n: b.N}
			b.ReportAllocs()
			b.ResetTimer()
			if err := p.Run(src); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "pkts/s")
			}
			snap, ok := p.Latest()
			if !ok || snap.Processed != uint64(b.N) {
				b.Fatalf("pipeline lost packets: %+v", snap)
			}
		})
	}
}

// BenchmarkStoreAppend measures the durable store's hot append path on
// 56-byte report records — one op is one Append, with the group-commit
// fsync cost (one sync per store.DefaultSyncEvery appends) amortized
// into the per-op number, which is how the write path actually runs.
func BenchmarkStoreAppend(b *testing.B) {
	w, err := store.Open(b.TempDir(), store.Options{
		SegmentRecords: 1 << 30,
		SyncWindowUS:   -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, metrics.ReportWireSize)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(store.KindReport, int64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReplay measures the mmap read path: replay a sealed
// multi-segment store of 56-byte report records, one op per record.
func BenchmarkStoreReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := store.Open(dir, store.Options{SegmentRecords: 4096})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, metrics.ReportWireSize)
	for i := 0; i < b.N; i++ {
		if err := w.Append(store.KindReport, int64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	r, err := store.OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	err = r.Replay(func(rec store.Record) error {
		if len(rec.Payload) != metrics.ReportWireSize {
			b.Fatalf("record %d payload %d bytes", n, len(rec.Payload))
		}
		n++
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("replayed %d of %d records", n, b.N)
	}
}
